"""Vectorized score-matrix construction with incremental updates.

:class:`ScoreMatrixBuilder` materializes the paper's (M+1)×N score matrix
on dense numpy arrays.  The virtual-host row is implicit: queued VMs carry
the configured ``queue_cost`` as their "current" cost, so any feasible
placement is a (large) improvement — exactly the paper's "VMs entering the
system are held in that queue with infinite score".

Hot-path structure (per the HPC guides — vectorize, then touch only what
changed):

* :meth:`build` computes all rows with broadcast numpy expressions;
* :meth:`apply_move` applies one hypothetical move, updates the occupancy
  bookkeeping, freezes the moved column, and recomputes **only** the two
  affected host rows;
* the per-column current costs and a per-row running argmin of the diff
  (score − current cost) are cached and maintained incrementally, so the
  hill climber's "find the most negative cell" step is O(M) per move via
  :meth:`best_move` instead of an O(M·N) fresh diff matrix;
* in-round planned operations feed a ``pending`` concurrency cost per
  host, so later moves in the same round see earlier ones through P_conc —
  this is what makes SB2 stagger simultaneous creations.

The minima cache is **per column**, not per row, and that choice is
load-bearing: queued VMs are frequently identical, so the per-row argmin
of the diff tends to point at the very column each move freezes —
a per-row cache would invalidate every row on every move.  Per column,

* freezing the moved column is an O(1) invalidation (its min goes +inf);
* a current-cost change shifts the whole diff column uniformly, so the
  cached min *value* shifts without moving the argmin *row*;
* only the ≤2 recomputed host rows can displace a column's cached min,
  and a full column rescan is needed only when the cached argmin row got
  strictly worse — rare outside a host filling up.

The incremental invariants (checked property-style in
``tests/test_score_incremental.py`` against a from-scratch rebuild and the
:class:`~repro.scheduling.score.evaluator.AssignmentEvaluator` oracle):

* ``_cur_costs[j]`` always equals what :meth:`current_costs` computed from
  scratch would return for column ``j``;
* ``(_col_min_val[j], _col_min_row[j])`` always equal the value/argmin of
  ``scores[:, j] - _cur_costs[j]`` (+inf when frozen), with the lowest
  row winning ties, so :meth:`best_move` is bit-identical to
  ``argmin(diff_matrix())`` — same cell, same tie-breaking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.host import Host
from repro.cluster.vm import Vm, VmState
from repro.errors import SchedulingError
from repro.scheduling.score.config import ScoreConfig

__all__ = ["HostArrayCache", "ScoreMatrixBuilder"]

INF = np.inf


class HostArrayCache:
    """Static host-side arrays, built once per simulation.

    Host specs never change during a run, yet every scheduling round used
    to rebuild the capacity/cost/reliability/arch arrays from Python
    attribute access over all hosts.  A policy builds this cache on first
    use and hands it to every :class:`ScoreMatrixBuilder` for the same
    host sequence; the builder treats the arrays as read-only (its
    per-round dynamic state — reserved resources, VM counts, concurrency
    costs, availability — stays per-builder).

    :meth:`matches` guards reuse: the fast path is sequence identity (the
    engine passes the same ``hosts`` list every round); a rebuilt list of
    the *same* Host objects is also accepted.
    """

    __slots__ = (
        "hosts",
        "host_index",
        "cap_cpu",
        "cap_mem",
        "cc",
        "cm",
        "rel",
        "arch",
        "hyp",
        "_last_match",
    )

    def __init__(self, hosts: Sequence[Host]) -> None:
        self.hosts = list(hosts)
        #: Last *sequence object* that passed :meth:`matches` — the engine
        #: hands the same list every round, so after one element-wise
        #: check all later calls are an O(1) identity test (at 10k hosts
        #: the per-round O(M) scan was ~half the simulation).
        self._last_match: object = hosts
        self.host_index = {h.host_id: i for i, h in enumerate(self.hosts)}
        self.cap_cpu = np.array([h.spec.cpu_capacity for h in self.hosts])
        self.cap_mem = np.array([h.spec.mem_mb for h in self.hosts])
        self.cc = np.array([h.spec.creation_s for h in self.hosts])
        self.cm = np.array([h.spec.migration_s for h in self.hosts])
        self.rel = np.array([h.spec.reliability for h in self.hosts])
        self.arch = np.array([h.spec.arch for h in self.hosts])
        self.hyp = np.array([h.spec.hypervisor for h in self.hosts])

    #: True on :class:`~repro.scheduling.score.columnar.ColumnarClusterState`
    #: — the builder's duck-typed switch for the persistent fast path.
    is_columnar = False

    def matches(self, hosts: Sequence[Host]) -> bool:
        """Whether this cache was built from exactly these host objects.

        The identity fast path is guarded by a length check: a host list
        *mutated in place* (append/remove) keeps its identity, and
        accepting it would hand out arrays for a different cluster.  A
        same-length in-place element swap cannot be seen from here — code
        that does that must call :meth:`invalidate_match_memo` (the
        element-wise check then re-validates or rejects the list).
        """
        n = len(self.cap_cpu)
        if (hosts is self.hosts or hosts is self._last_match) and len(hosts) == n:
            return True
        if len(hosts) != n:
            return False
        if all(a is b for a, b in zip(hosts, self.hosts)):
            self._last_match = hosts
            return True
        return False

    def invalidate_match_memo(self) -> None:
        """Drop the memoized sequence; the next :meth:`matches` re-checks.

        For callers that mutate a previously matched host list in place
        (same object, same length, different elements) — identity alone
        cannot detect that.
        """
        self._last_match = None


class ScoreMatrixBuilder:
    """Builds and incrementally maintains the score matrix.

    Parameters
    ----------
    hosts:
        All hosts, id order (rows of the matrix).
    columns:
        The schedulable VMs (matrix columns): queued VMs plus — when the
        config allows migration — running VMs.  VMs with operations in
        flight must not be passed; they are pinned by definition.
    now:
        Current simulation time (drives the migration penalty's T_r).
    config:
        Penalty toggles and cost constants.
    fulfillments:
        Optional vm_id → SLA fulfilment map (required when
        ``config.enable_sla``).
    host_cache:
        Optional :class:`HostArrayCache` for these hosts — skips
        rebuilding the static host-side arrays (built fresh when absent).
    reliability:
        Optional per-host reliability vector (host order) overriding the
        static spec ``F_rel`` in P_fault — the observed-reliability hook.
    """

    def __init__(
        self,
        hosts: Sequence[Host],
        columns: Sequence[Vm],
        now: float,
        config: ScoreConfig,
        fulfillments: Optional[Dict[int, float]] = None,
        host_cache: Optional[HostArrayCache] = None,
        reliability: Optional[Sequence[float]] = None,
    ) -> None:
        if host_cache is None or not host_cache.matches(hosts):
            host_cache = HostArrayCache(hosts)
        # Columnar fast path: a ColumnarClusterState (duck-typed via the
        # ``is_columnar`` flag to keep the import graph acyclic) carries
        # persistent dynamic host arrays and the per-VM slot registry.
        columnar = host_cache if host_cache.is_columnar else None
        self.host_cache = host_cache
        self.hosts = host_cache.hosts
        self.columns = list(columns)
        self.now = float(now)
        self.config = config
        self.n_rows = len(self.hosts)
        self.n_cols = len(self.columns)

        host_index = host_cache.host_index

        # ---- host-side arrays -------------------------------------------
        # Static arrays come from the per-simulation cache; dynamic state
        # (availability, occupancy, concurrency, in-round pending costs)
        # comes from the columnar state's O(dirty) sync when available,
        # else is rebuilt per round from the hosts' O(1) occupancy
        # aggregates.  Quarantined hosts (supervisor exclusion) take no new
        # columns; their residents' current cells go infinite, which prices
        # them at queue_cost and lets the hill climber drain the machine.
        self.cap_cpu = host_cache.cap_cpu
        self.cap_mem = host_cache.cap_mem
        if columnar is not None:
            columnar.sync()
            # Copies: apply_move mutates these hypothetically per round.
            self.avail = columnar.avail.copy()
            self.res_cpu = columnar.res_cpu.copy()
            self.res_mem = columnar.res_mem.copy()
            self.nvms = columnar.nvms.copy()
            self.conc = columnar.conc.copy()
        else:
            self.avail = np.array(
                [h.is_available and not h.quarantined for h in self.hosts],
                dtype=bool,
            )
            self.res_cpu = np.array([h.cpu_reserved() for h in self.hosts])
            self.res_mem = np.array([h.mem_reserved() for h in self.hosts])
            self.nvms = np.array([h.n_vms for h in self.hosts], dtype=float)
            self.conc = np.array([h.concurrency_cost for h in self.hosts])
        self.pending = np.zeros(self.n_rows)
        self.cc = host_cache.cc
        self.cm = host_cache.cm
        self.rel = (
            host_cache.rel
            if reliability is None
            else np.asarray(reliability, dtype=float)
        )

        # ---- vm-side arrays ----------------------------------------------
        if columnar is not None:
            slots, self.cur, self.is_queued, self.tr = columnar.prepare_columns(
                self.columns, self.now
            )
            self.vcpu = columnar.v_cpu[slots]
            self.vmem = columnar.v_mem[slots]
            self.ftol = columnar.v_ftol[slots]
            self.req_ok = columnar.feasibility(slots)
        else:
            for vm in self.columns:
                if vm.in_operation:
                    raise SchedulingError(
                        f"vm {vm.vm_id} has an operation in flight and cannot be a column"
                    )
            self.vcpu = np.array([vm.cpu_req for vm in self.columns])
            self.vmem = np.array([vm.mem_req for vm in self.columns])
            self.cur = np.array(
                [
                    host_index.get(vm.host_id, -1) if vm.is_placed else -1
                    for vm in self.columns
                ],
                dtype=int,
            )
            self.is_queued = np.array(
                [vm.state is VmState.QUEUED for vm in self.columns], dtype=bool
            )
            self.tr = np.array(
                [vm.remaining_user_time(self.now) for vm in self.columns]
            )
            self.ftol = np.array([vm.job.fault_tolerance for vm in self.columns])
            # Requirement feasibility is string-based and static per round.
            host_arch = host_cache.arch
            host_hyp = host_cache.hyp
            vm_arch = np.array([vm.job.arch for vm in self.columns])
            vm_hyp = np.array([vm.job.hypervisor for vm in self.columns])
            if self.n_cols:
                self.req_ok = (
                    (host_arch[:, None] == vm_arch[None, :])
                    & (host_hyp[:, None] == vm_hyp[None, :])
                    & (self.vcpu[None, :] <= self.cap_cpu[:, None] + 1e-9)
                    & (self.vmem[None, :] <= self.cap_mem[:, None] + 1e-9)
                )
            else:
                self.req_ok = np.zeros((self.n_rows, 0), dtype=bool)
        if config.enable_sla:
            if fulfillments is None:
                raise SchedulingError("enable_sla requires a fulfillments map")
            self.fulf = np.array(
                [fulfillments.get(vm.vm_id, 1.0) for vm in self.columns]
            )
        else:
            self.fulf = np.ones(self.n_cols)

        self.frozen = np.zeros(self.n_cols, dtype=bool)
        # The migration penalty depends only on static quantities (T_r at
        # round start, per-host C_m), so it is materialized once and reused
        # by every row rescore.
        if self.n_cols:
            cm2 = self.cm[:, None]
            self._mig_pen = np.where(
                self.tr[None, :] < cm2, 2.0 * cm2, cm2 / 2.0
            )
        else:
            self._mig_pen = np.zeros((self.n_rows, 0))
        # Unavailable rows can never hold a finite cell (``feasible``
        # carries ``avail``), so the build scores only the available rows
        # and leaves the rest at the +inf they would compute to anyway.
        # Under the λ power manager most of a big datacenter is off, and
        # this turns the per-round build from O(M×N) into O(online×N).
        self.active_rows = np.nonzero(self.avail)[0]
        self.scores = np.full((self.n_rows, self.n_cols), INF)
        if self.n_cols and self.active_rows.size:
            if self.active_rows.size == self.n_rows:
                self.scores[:] = self._score_rows(None)
            else:
                self.scores[self.active_rows] = self._score_rows(self.active_rows)

        # ---- incremental caches ------------------------------------------
        self._cur_costs = self._compute_current_costs()
        self._col_min_val = np.full(self.n_cols, INF)
        self._col_min_row = np.zeros(self.n_cols, dtype=int)
        if self.n_cols and self.n_rows:
            self._refresh_col_minima(np.arange(self.n_cols))

    # ----------------------------------------------------------------- math

    def _score_rows(self, rows: Optional[np.ndarray]) -> np.ndarray:
        """Compute score cells for the given host rows, all columns.

        ``rows=None`` means *all* rows (the full build) and skips the
        fancy-indexing copies — ``a[arange(M)]`` copies every host array
        ~10 times per round, which is real money at 10k hosts.  The view
        path performs the identical elementwise float operations, so the
        cells stay bit-identical.
        """
        cfg = self.config
        if rows is None:
            R = np.arange(self.n_rows)
            take = lambda a: a  # noqa: E731 - trivial view selector
        else:
            R = np.asarray(rows, dtype=int)
            take = lambda a: a[R]  # noqa: E731
        on = self.cur[None, :] == R[:, None]

        add_cpu = np.where(on, 0.0, self.vcpu[None, :])
        add_mem = np.where(on, 0.0, self.vmem[None, :])
        occ_after = np.maximum(
            (take(self.res_cpu)[:, None] + add_cpu) / take(self.cap_cpu)[:, None],
            (take(self.res_mem)[:, None] + add_mem) / take(self.cap_mem)[:, None],
        )
        # P_pwr uses the host's occupation *without* the tentative VM —
        # the paper's §III-A-4 defines "O(h, vm) = occupation of h" (no
        # allocation), unlike P_res's "occupation of h allocating vm".
        occ_now = np.maximum(
            take(self.res_cpu) / take(self.cap_cpu),
            take(self.res_mem) / take(self.cap_mem),
        )[:, None]

        feasible = (
            take(self.req_ok)
            & take(self.avail)[:, None]
            & (occ_after <= 1.0 + 1e-9)
        )

        s = np.zeros((len(R), self.n_cols))
        if cfg.enable_virt:
            migration = take(self._mig_pen)
            creation = np.broadcast_to(take(self.cc)[:, None], migration.shape)
            s += np.where(on, 0.0, np.where(self.is_queued[None, :], creation, migration))
        if cfg.enable_conc:
            load = take(self.conc + self.pending)[:, None]
            s += np.where(on, 0.0, load)
        if cfg.enable_pwr:
            t_empty = (take(self.nvms)[:, None] <= cfg.th_empty).astype(float)
            s += t_empty * cfg.c_empty - occ_now * cfg.c_fill
        if cfg.enable_sla:
            viol = on & (self.fulf[None, :] < 1.0)
            hard = viol & (self.fulf[None, :] <= cfg.th_sla)
            s += np.where(viol, cfg.c_sla, 0.0)
            s = np.where(hard, INF, s)
        if cfg.enable_fault:
            s += ((1.0 - take(self.rel))[:, None] - self.ftol[None, :]) * cfg.c_fail

        return np.where(feasible, s, INF)

    def _score_row(self, r: int) -> np.ndarray:
        """One host row of the score matrix, with scalar host-side terms.

        Bit-identical to ``_score_rows([r])`` — every elementwise float
        operation is the same — but roughly half the numpy dispatches,
        which is what the hill climber's per-move rescoring pays for.
        """
        cfg = self.config
        if not self.avail[r]:
            return np.full(self.n_cols, INF)
        cap_cpu = self.cap_cpu[r]
        cap_mem = self.cap_mem[r]
        res_cpu = self.res_cpu[r]
        res_mem = self.res_mem[r]

        on = self.cur == r
        add_cpu = np.where(on, 0.0, self.vcpu)
        add_mem = np.where(on, 0.0, self.vmem)
        occ_after = np.maximum(
            (res_cpu + add_cpu) / cap_cpu, (res_mem + add_mem) / cap_mem
        )
        occ_now = max(res_cpu / cap_cpu, res_mem / cap_mem)
        feasible = self.req_ok[r] & (occ_after <= 1.0 + 1e-9)

        s = np.zeros(self.n_cols)
        if cfg.enable_virt:
            base = np.where(self.is_queued, self.cc[r], self._mig_pen[r])
            s += np.where(on, 0.0, base)
        if cfg.enable_conc:
            s += np.where(on, 0.0, self.conc[r] + self.pending[r])
        if cfg.enable_pwr:
            t_empty = 1.0 if self.nvms[r] <= cfg.th_empty else 0.0
            s += t_empty * cfg.c_empty - occ_now * cfg.c_fill
        if cfg.enable_sla:
            viol = on & (self.fulf < 1.0)
            hard = viol & (self.fulf <= cfg.th_sla)
            s += np.where(viol, cfg.c_sla, 0.0)
            s = np.where(hard, INF, s)
        if cfg.enable_fault:
            s += ((1.0 - self.rel[r]) - self.ftol) * cfg.c_fail

        return np.where(feasible, s, INF)

    # -------------------------------------------------------------- caches

    def _soft_current_cost(self, r: int, j: int) -> Optional[float]:
        """Score of column ``j``'s own cell with the *soft* SLA penalty.

        ``r`` must be ``cur[j]``.  Returns ``None`` when the cell is
        genuinely infeasible for reasons other than the hard-SLA promotion
        (host unavailable, P_req failed, occupation past 100 %) — those
        VMs are forced out and keep the queue_cost pricing.  Otherwise the
        returned value replays ``_score_row``'s float operations for an
        "on" cell (where P_virt and P_conc contribute exactly 0.0) with
        ``c_sla`` in place of the hard infinity, so it is bit-identical to
        the score the cell would carry if ``fulf`` were above ``th_sla``.
        """
        cfg = self.config
        if not self.avail[r] or not self.req_ok[r, j]:
            return None
        occ_now = max(
            self.res_cpu[r] / self.cap_cpu[r], self.res_mem[r] / self.cap_mem[r]
        )
        if not occ_now <= 1.0 + 1e-9:
            return None
        s = 0.0
        if cfg.enable_pwr:
            t_empty = 1.0 if self.nvms[r] <= cfg.th_empty else 0.0
            s += t_empty * cfg.c_empty - occ_now * cfg.c_fill
        if cfg.enable_sla and self.fulf[j] < 1.0:
            s += cfg.c_sla
        if cfg.enable_fault:
            s += ((1.0 - self.rel[r]) - self.ftol[j]) * cfg.c_fail
        return float(s)

    def _reprice_infinite(self, cols: np.ndarray, costs: np.ndarray) -> None:
        """Apply the ``reprice_hard_sla`` fix to columns priced at INF.

        ``cols`` are placed columns whose current cell is infinite and
        ``costs`` their (queue_cost-initialized) cost slots, updated in
        place where the soft pricing applies.
        """
        for k, j in enumerate(cols):
            soft = self._soft_current_cost(int(self.cur[j]), int(j))
            if soft is not None:
                costs[k] = soft

    def _compute_current_costs(self) -> np.ndarray:
        """From-scratch per-column current costs (cache initialization)."""
        costs = np.full(self.n_cols, self.config.queue_cost)
        placed = np.nonzero(self.cur >= 0)[0]
        if placed.size:
            vals = self.scores[self.cur[placed], placed]
            finite = np.isfinite(vals)
            costs[placed[finite]] = vals[finite]
            if self.config.reprice_hard_sla and not finite.all():
                bad = placed[~finite]
                sub = costs[bad]
                self._reprice_infinite(bad, sub)
                costs[bad] = sub
        return costs

    def _refresh_col_minima(self, cols: np.ndarray) -> None:
        """Recompute the cached (value, argmin-row) of the diff for ``cols``.

        Frozen columns are pinned at +inf / row 0 regardless of scores.
        """
        live = cols[~self.frozen[cols]]
        dead = cols[self.frozen[cols]]
        if dead.size:
            self._col_min_val[dead] = INF
            self._col_min_row[dead] = 0
        if live.size:
            # Only available rows can hold a finite diff, so the argmin
            # scans those; on an all-∞ column the cached row is arbitrary
            # (best_move never surfaces a row for a non-finite best and
            # apply_move's take/rescan rules are inert at +inf).
            act = self.active_rows
            if act.size == 0:
                self._col_min_val[live] = INF
                self._col_min_row[live] = 0
                return
            if act.size == self.n_rows:
                sub = self.scores[:, live]
            else:
                sub = self.scores[np.ix_(act, live)]
            sub = sub - self._cur_costs[live][None, :]
            k = np.argmin(sub, axis=0)
            self._col_min_row[live] = act[k]
            self._col_min_val[live] = sub[k, np.arange(len(live))]

    # ------------------------------------------------------------ interface

    def current_costs(self) -> np.ndarray:
        """Per-column cost of the status quo.

        Queued VMs sit on the virtual host at ``queue_cost``; placed VMs
        cost their current cell.  An infinite current cell whose VM is
        *forced* out (host unavailable/quarantined, requirements no longer
        met, occupation pushed over 100 % by requirement inflation) also
        maps to ``queue_cost``: the VM urgently wants out and any feasible
        cell is an improvement.

        A hard-SLA promotion (``fulf <= th_sla`` on an otherwise feasible
        placement) historically got the same queue_cost pricing, which
        made the climber migrate the VM to *any* feasible host every
        consolidation round even though fulfilment follows the (inflated)
        requirement, not the host — pure migration churn.  With
        ``config.reprice_hard_sla`` those columns are priced at their soft
        (``c_sla``) score instead, so they move only for genuine gains;
        the legacy pricing remains the default because the committed
        macro baselines were recorded with it.
        """
        return self._cur_costs.copy()

    def diff_matrix(self) -> np.ndarray:
        """scores − current costs, with frozen columns masked to +inf."""
        diff = self.scores - self._cur_costs[None, :]
        if self.frozen.any():
            diff[:, self.frozen] = INF
        return diff

    def best_move(self) -> Optional[tuple]:
        """``(row, col, gain)`` of the most negative diff cell, in O(N).

        Reads the cached per-column minima instead of materializing the
        diff matrix; ties break exactly like ``np.argmin(diff_matrix())``
        — lowest row first, then lowest column.  Returns ``None`` on an
        empty matrix; the returned ``gain`` may be non-negative or +inf
        (the caller decides when to stop climbing).
        """
        if self.n_cols == 0 or self.n_rows == 0:
            return None
        best = float(np.min(self._col_min_val))
        if not np.isfinite(best):
            return 0, int(np.argmin(self._col_min_val)), best
        ties = np.nonzero(self._col_min_val == best)[0]
        k = int(np.argmin(self._col_min_row[ties]))
        return int(self._col_min_row[ties[k]]), int(ties[k]), best

    def apply_move(self, col: int, row: int) -> None:
        """Hypothetically move column ``col`` to host row ``row``.

        Updates occupancy bookkeeping, freezes the column (one move per VM
        per round — the engine starts an operation on it immediately), adds
        the planned operation to the destination's pending concurrency
        cost, and recomputes the two affected host rows.
        """
        if self.frozen[col]:
            raise SchedulingError(f"column {col} is frozen")
        if not (0 <= row < self.n_rows):
            raise SchedulingError(f"row {row} out of range")
        old = int(self.cur[col])
        if old == row:
            raise SchedulingError("move must change the host")

        if old >= 0:
            self.res_cpu[old] -= self.vcpu[col]
            self.res_mem[old] -= self.vmem[col]
            self.nvms[old] -= 1
        self.res_cpu[row] += self.vcpu[col]
        self.res_mem[row] += self.vmem[col]
        self.nvms[row] += 1
        self.pending[row] += self.cc[row] if self.is_queued[col] else self.cm[row]

        self.cur[col] = row
        self.is_queued[col] = False
        self.frozen[col] = True

        touched = [row] if old < 0 else sorted({old, row})
        for t in touched:
            self.scores[t, :] = self._score_row(t)

        # ---- incremental cache maintenance -------------------------------
        # The moved column is frozen: O(1) invalidation.
        self._col_min_val[col] = INF
        self._col_min_row[col] = 0

        # Current costs change only for columns homed on a touched row
        # (their current cell was just recomputed).  A cost change shifts
        # that column's whole diff uniformly, so the cached min value
        # shifts with it and the argmin row stays put.
        homed = self.cur == touched[0]
        if len(touched) == 2:
            homed |= self.cur == touched[1]
        homed = np.nonzero(homed)[0]
        if homed.size:
            vals = self.scores[self.cur[homed], homed]
            finite = np.isfinite(vals)
            new_costs = np.where(finite, vals, self.config.queue_cost)
            if self.config.reprice_hard_sla and not finite.all():
                bad = np.nonzero(~finite)[0]
                sub = new_costs[bad]
                self._reprice_infinite(homed[bad], sub)
                new_costs[bad] = sub
            # (+inf cached minima absorb the shift: inf + finite == inf.)
            self._col_min_val[homed] += self._cur_costs[homed] - new_costs
            self._cur_costs[homed] = new_costs

        # Score changes are confined to the touched rows.  For each live
        # column, compare the cached min (v at row r) with the best new
        # value over the touched rows (w at row rw, lowest row on ties).
        # Every untouched row still holds a value >= v, so:
        #   w < v, or w == v at a lower row  ->  (w, rw) is the new min;
        #   cached row untouched, not beaten ->  cache still valid;
        #   cached row touched and got worse ->  full column rescan.
        live = ~self.frozen
        v = self._col_min_val
        r = self._col_min_row
        if len(touched) == 1:
            t0 = touched[0]
            w = self.scores[t0] - self._cur_costs
            # With one touched row the general rule below collapses to:
            # take on a strict win, or a tie at a row index not above the
            # cached one (covers both the rw<r and the in-T rw==r cases).
            take = live & ((w < v) | ((w == v) & (r >= t0)))
            rescan = live & (r == t0) & (w > v)
            if take.any():
                self._col_min_val[take] = w[take]
                self._col_min_row[take] = t0
        else:
            d0 = self.scores[touched[0]] - self._cur_costs
            d1 = self.scores[touched[1]] - self._cur_costs
            first = d0 <= d1
            w = np.where(first, d0, d1)
            rw = np.where(first, touched[0], touched[1])
            in_t = (r == touched[0]) | (r == touched[1])
            take = (w < v) | ((w == v) & (rw < r)) | (in_t & (w == v) & (rw <= r))
            take &= live
            rescan = live & in_t & ~take
            if take.any():
                self._col_min_val[take] = w[take]
                self._col_min_row[take] = rw[take]
        if rescan.any():
            self._refresh_col_minima(np.nonzero(rescan)[0])

    # -------------------------------------------------------------- reports

    def host_row_score(self, row: int) -> float:
        """Aggregated row score used for shutdown ranking (§III-C).

        Mean of the row with infinities replaced by the queue cost — hosts
        that cannot take anything (many ∞) and hosts that are expensive for
        everything both rank high, i.e. are shut down first.
        """
        if self.n_cols == 0:
            return 0.0
        vals = self.scores[row, :].copy()
        vals[~np.isfinite(vals)] = self.config.queue_cost
        return float(vals.mean())
