"""Decision transparency: per-penalty breakdown of score cells.

Operators (and tests, and the paper-reading brain) want to know *why* the
scheduler put a VM somewhere.  :func:`explain_cell` decomposes one
⟨host, VM⟩ score into the seven penalty families exactly as §III-A defines
them; :func:`explain_decision` ranks all hosts for a VM and annotates the
winner — the textual equivalent of one matrix column.

Built on the scalar reference penalties (the readable spec), not the
vectorized matrix, so an explanation is independently computed from the
production path it explains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.host import Host
from repro.cluster.vm import Vm
from repro.scheduling.score.config import ScoreConfig
from repro.scheduling.score import penalties as P

__all__ = ["CellExplanation", "DecisionExplanation", "explain_cell", "explain_decision"]


@dataclass(frozen=True)
class CellExplanation:
    """One ⟨host, VM⟩ cell, decomposed."""

    host_id: int
    vm_id: int
    p_req: float
    p_res: float
    p_virt: float
    p_conc: float
    p_pwr: float
    p_sla: float
    p_fault: float
    total: float

    @property
    def feasible(self) -> bool:
        """Whether the allocation is possible at all."""
        return math.isfinite(self.total)

    def breakdown(self) -> Dict[str, float]:
        """Enabled penalty components by name."""
        return {
            "P_req": self.p_req,
            "P_res": self.p_res,
            "P_virt": self.p_virt,
            "P_conc": self.p_conc,
            "P_pwr": self.p_pwr,
            "P_SLA": self.p_sla,
            "P_fault": self.p_fault,
        }

    def __str__(self) -> str:
        if not self.feasible:
            blocker = "P_req" if math.isinf(self.p_req) else (
                "P_res" if math.isinf(self.p_res) else "pinned/violation"
            )
            return f"host {self.host_id}: infeasible ({blocker})"
        parts = " + ".join(
            f"{name}={value:.2f}"
            for name, value in self.breakdown().items()
            if value != 0.0
        )
        return f"host {self.host_id}: {self.total:.2f} [{parts or '0'}]"


@dataclass(frozen=True)
class DecisionExplanation:
    """A full ranking of candidate hosts for one VM."""

    vm_id: int
    cells: List[CellExplanation] = field(default_factory=list)

    @property
    def best(self) -> Optional[CellExplanation]:
        """The lowest-scoring feasible cell, if any."""
        feasible = [c for c in self.cells if c.feasible]
        return min(feasible, key=lambda c: c.total) if feasible else None

    def __str__(self) -> str:
        lines = [f"vm {self.vm_id}:"]
        ranked = sorted(
            self.cells, key=lambda c: (not c.feasible, c.total)
        )
        for i, cell in enumerate(ranked):
            marker = "->" if (self.best is cell) else "  "
            lines.append(f" {marker} {cell}")
            if i >= 9:
                lines.append(f"    ... {len(ranked) - 10} more hosts")
                break
        return "\n".join(lines)


def explain_cell(
    host: Host,
    vm: Vm,
    now: float,
    config: Optional[ScoreConfig] = None,
    *,
    fulfillment: float = 1.0,
    pending_conc_cost: float = 0.0,
) -> CellExplanation:
    """Decompose ``Score(h, vm)`` into its penalty components."""
    config = config or ScoreConfig.sb()
    p_req = P.p_req(host, vm)
    p_res = P.p_res(host, vm)
    p_virt = P.p_virt(host, vm, now) if config.enable_virt else 0.0
    p_conc = P.p_conc(host, vm, pending_conc_cost) if config.enable_conc else 0.0
    p_pwr = P.p_pwr(host, vm, config) if config.enable_pwr else 0.0
    p_sla = P.p_sla(host, vm, fulfillment, config) if config.enable_sla else 0.0
    p_fault = P.p_fault(host, vm, config) if config.enable_fault else 0.0
    total = p_req + p_res + p_virt + p_conc + p_pwr + p_sla + p_fault
    return CellExplanation(
        host_id=host.host_id,
        vm_id=vm.vm_id,
        p_req=p_req,
        p_res=p_res,
        p_virt=p_virt,
        p_conc=p_conc,
        p_pwr=p_pwr,
        p_sla=p_sla,
        p_fault=p_fault,
        total=total,
    )


def explain_decision(
    hosts: Sequence[Host],
    vm: Vm,
    now: float,
    config: Optional[ScoreConfig] = None,
    *,
    fulfillment: float = 1.0,
) -> DecisionExplanation:
    """Rank every host for one VM with full penalty breakdowns."""
    config = config or ScoreConfig.sb()
    cells = [
        explain_cell(host, vm, now, config, fulfillment=fulfillment)
        for host in hosts
    ]
    return DecisionExplanation(vm_id=vm.vm_id, cells=cells)
