"""The score-based scheduling policy.

:class:`ScoreBasedPolicy` packages the matrix builder and the hill-climbing
solver behind the common :class:`~repro.scheduling.base.SchedulingPolicy`
interface.  Each scheduling round it:

1. collects the matrix columns — queued VMs, plus running VMs when
   migration is enabled (VMs with operations in flight are pinned and
   excluded, per §III-A-3);
2. computes SLA fulfilments when dynamic enforcement is on;
3. builds the matrix, runs Algorithm 1, and converts the chosen moves into
   :class:`~repro.scheduling.actions.Place` / :class:`~repro.scheduling.actions.Migrate`
   actions.

It also overrides the shutdown ranking hook: idle hosts are ordered by
their aggregated matrix-row score ("those nodes with a higher score are
selected to be turned off", §III-C), so e.g. slow-creation nodes power
down before fast ones.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster.host import Host
from repro.cluster.vm import Vm, VmState
from repro.errors import StateError
from repro.scheduling.actions import Action, Migrate, Place
from repro.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.scheduling.score.columnar import ColumnarClusterState
from repro.scheduling.score.config import ScoreConfig
from repro.scheduling.score.matrix import HostArrayCache, ScoreMatrixBuilder
from repro.scheduling.score.persistent import PersistentScoreMatrix
from repro.scheduling.score.solver import anytime_hill_climb, hill_climb
from repro.sla.monitor import fulfillment

__all__ = ["ScoreBasedPolicy"]


class ScoreBasedPolicy(SchedulingPolicy):
    """The paper's policy, §III.

    Parameters
    ----------
    config:
        Penalty toggles and constants; use the presets
        :meth:`ScoreConfig.sb0` … :meth:`ScoreConfig.full`.
    name:
        Table label; defaults to a preset-style name derived from the
        config.

    Examples
    --------
    >>> from repro.scheduling.score import ScoreConfig
    >>> policy = ScoreBasedPolicy(ScoreConfig.sb())
    >>> policy.supports_migration
    True
    """

    def __init__(
        self,
        config: Optional[ScoreConfig] = None,
        name: Optional[str] = None,
        solver: str = "hill_climb",
        solver_seed: int = 0,
        use_columnar: bool = True,
        use_persistent_matrix: Optional[bool] = None,
    ) -> None:
        self.config = config or ScoreConfig.sb()
        self.supports_migration = self.config.allow_migration
        self.solver = solver
        self.solver_seed = solver_seed
        #: Persistent columnar kernel switch.  On (default), the policy
        #: keeps a :class:`ColumnarClusterState` and matrix construction
        #: is O(dirty hosts + columns); off, every round re-lists host and
        #: VM state from Python objects (the seed kernel) — kept for A/B
        #: benchmarking and the columnar-vs-seed equality oracle.
        self.use_columnar = use_columnar
        if solver not in ("hill_climb", "sa", "tabu"):
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"unknown solver {solver!r}")
        #: Persistent cross-round score matrix switch.  Defaults to on
        #: whenever its prerequisites hold (columnar kernel + the
        #: hill-climbing solver — metaheuristics mutate a fresh builder);
        #: pass False to force the per-round rebuild (A/B benchmarking,
        #: the persistent-vs-fresh oracle).
        if use_persistent_matrix is None:
            use_persistent_matrix = use_columnar and solver == "hill_climb"
        elif use_persistent_matrix and not (
            use_columnar and solver == "hill_climb"
        ):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "use_persistent_matrix requires use_columnar and the "
                "hill_climb solver"
            )
        self.use_persistent_matrix = use_persistent_matrix
        self._matrix: Optional[PersistentScoreMatrix] = None
        #: Strict-mode self-check: every bind is verified against a fresh
        #: build (same env convention as the engine's invariant sweeps).
        self._verify_mode = os.environ.get(
            "REPRO_STRICT_INVARIANTS", ""
        ).lower()
        self.name = name if name is not None else self._derive_name()
        self._next_consolidation = 0.0
        self._host_cache: Optional[HostArrayCache] = None
        #: host_id -> learned reliability, wired up by the engine when
        #: ``EngineConfig.observed_reliability`` is on; consulted only when
        #: the config sets ``use_observed_reliability``.
        self.reliability_source: Optional[Callable[[int], float]] = None
        #: Anytime-mode hook, wired up by the control-plane service
        #: (:class:`repro.service.anytime.RoundBudgetController`): when
        #: set, each round's hill climb runs under the budget/deadline the
        #: controller hands out and reports the iterations it actually
        #: committed back (the journaled replay token).  None — the
        #: default everywhere outside service mode — keeps ``decide``
        #: bit-identical to the plain full climb.  Requires the
        #: ``hill_climb`` solver (metaheuristics have no anytime prefix
        #: property).
        self.budget_controller: Optional["RoundBudget"] = None

    def _cached_host_arrays(self, ctx: SchedulingContext) -> HostArrayCache:
        """The per-simulation static host arrays (rebuilt on a new cluster).

        Policies may be reused across simulations with different clusters;
        :meth:`HostArrayCache.matches` catches that (identity fast path on
        the engine's stable host list, element-wise identity otherwise).
        """
        cache = self._host_cache
        if cache is None or not cache.matches(ctx.hosts):
            cache = (
                ColumnarClusterState(ctx.hosts)
                if self.use_columnar
                else HostArrayCache(ctx.hosts)
            )
            self._host_cache = cache
        return cache

    def _reliability_vector(
        self, ctx: SchedulingContext
    ) -> Optional[Sequence[float]]:
        """Learned per-host reliabilities for P_fault, or None (static F_rel)."""
        if (
            not self.config.enable_fault
            or not self.config.use_observed_reliability
            or self.reliability_source is None
        ):
            return None
        source = self.reliability_source
        return [source(h.host_id) for h in ctx.hosts]

    def _derive_name(self) -> str:
        cfg = self.config
        if cfg.enable_sla or cfg.enable_fault:
            return "SB-full"
        if cfg.allow_migration:
            return "SB"
        if cfg.enable_conc:
            return "SB2"
        if cfg.enable_virt:
            return "SB1"
        return "SB0"

    # -------------------------------------------------------------- building

    def _builder(
        self,
        ctx: SchedulingContext,
        columns: List[Vm],
        fulfills: Optional[Dict[int, float]],
    ) -> Union[ScoreMatrixBuilder, PersistentScoreMatrix]:
        """The round's matrix: persistent (bound to this round) or fresh.

        The persistent matrix survives across rounds and rescores only
        dirty rows/changed columns; it is rebuilt only when the host
        cache is (a new cluster).  Under ``REPRO_STRICT_INVARIANTS`` every
        bind is verified against a from-scratch build (``raise`` mode
        propagates the drift, ``resync`` forces a full rebuild).
        """
        cache = self._cached_host_arrays(ctx)
        reliability = self._reliability_vector(ctx)
        if not (self.use_persistent_matrix and cache.is_columnar):
            return ScoreMatrixBuilder(
                hosts=ctx.hosts,
                columns=columns,
                now=ctx.now,
                config=self.config,
                fulfillments=fulfills,
                host_cache=cache,
                reliability=reliability,
            )
        matrix = self._matrix
        if matrix is None or matrix.state is not cache:
            matrix = PersistentScoreMatrix(cache, self.config)
            self._matrix = matrix
        matrix.bind_round(columns, ctx.now, fulfills, reliability)
        if self._verify_mode in ("raise", "resync"):
            try:
                matrix.verify_against_fresh(
                    columns, ctx.now, fulfills, reliability
                )
            except StateError as exc:
                if self._verify_mode == "raise":
                    raise
                warnings.warn(
                    f"t={ctx.now:.0f}s: persistent matrix drift, full "
                    f"rebuild forced: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                matrix.force_full_rebuild()
                matrix.bind_round(columns, ctx.now, fulfills, reliability)
        return matrix

    # -------------------------------------------------------------- deciding

    def _columns(self, ctx: SchedulingContext, *, include_running: bool = True) -> List[Vm]:
        # Filter on *current* state, not the context snapshot's view: the
        # power manager re-uses the round's context after placements have
        # been applied, so a VM listed as queued may already be CREATING.
        cols: List[Vm] = [vm for vm in ctx.queued if vm.state is VmState.QUEUED]
        if self.config.allow_migration and include_running:
            cols.extend(vm for vm in ctx.placed if vm.state is VmState.RUNNING)
        return cols

    def _consolidation_due(self, ctx: SchedulingContext) -> bool:
        """Whether this round may consider migrations.

        Migration churn is throttled to one consolidation pass per
        ``consolidation_period_s`` — the paper's "periodically calculates
        whether to move jobs".  Rounds with SLA-violating VMs always
        consolidate (dynamic enforcement must be able to relocate them).
        """
        if not self.config.allow_migration:
            return False
        if ctx.now >= self._next_consolidation:
            return True
        if self.config.enable_sla:
            return any(
                fulfillment(vm, ctx.now) < 1.0
                for vm in ctx.placed
                if vm.state is VmState.RUNNING
            )
        return False

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        consolidate = self._consolidation_due(ctx)
        if consolidate and self.config.allow_migration:
            self._next_consolidation = ctx.now + self.config.consolidation_period_s
        columns = self._columns(ctx, include_running=consolidate)
        if not columns:
            return []
        fulfills: Optional[Dict[int, float]] = None
        if self.config.enable_sla:
            fulfills = {vm.vm_id: fulfillment(vm, ctx.now) for vm in columns}
        builder = self._builder(ctx, columns, fulfills)
        if self.solver == "hill_climb":
            controller = self.budget_controller
            if controller is not None:
                budget, deadline_s = controller.begin_round(ctx.now)
                result = anytime_hill_climb(
                    builder, budget=budget, deadline_s=deadline_s
                )
                controller.end_round(ctx.now, result)
                moves = result.moves
            else:
                moves = hill_climb(builder)
        else:
            from repro.scheduling.score.metaheuristics import solve

            moves = solve(self.solver, builder, seed=self.solver_seed)
        actions: List[Action] = []
        for move in moves:
            if move.from_queue:
                actions.append(Place(vm_id=move.vm_id, host_id=move.host_id))
            else:
                actions.append(Migrate(vm_id=move.vm_id, dst_host_id=move.host_id))
        return actions

    # ------------------------------------------------------------- shutdown

    def host_shutdown_ranking(
        self, ctx: SchedulingContext, candidates: List[Host]
    ) -> List[Host]:
        """Rank idle hosts by aggregated matrix-row score, worst first."""
        if not candidates:
            return []
        columns = self._columns(ctx)
        if not columns:
            # Nothing schedulable: fall back to static preference
            # (slowest class first — their creations cost the most).
            return sorted(
                candidates, key=lambda h: (-h.spec.creation_s, -h.host_id)
            )
        fulfills: Optional[Dict[int, float]] = None
        if self.config.enable_sla:
            fulfills = {vm.vm_id: fulfillment(vm, ctx.now) for vm in columns}
        builder = self._builder(ctx, columns, fulfills)
        row_of = builder.host_cache.host_index
        return sorted(
            candidates,
            key=lambda h: (-builder.host_row_score(row_of[h.host_id]), -h.host_id),
        )
