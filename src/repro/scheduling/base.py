"""The scheduling-policy interface.

A policy is a pure decision function: given a :class:`SchedulingContext`
(hosts, queued VMs, placed VMs, current time) it returns a list of
:class:`~repro.scheduling.actions.Action`.  Policies must treat the context
as **read-only** — the engine applies the returned actions through its
actuators, validating feasibility.  Passing live host objects (instead of
defensive snapshots) keeps the hot scheduling path allocation-free, per the
HPC guides; the engine enforces the contract by validating every action
before applying it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.cluster.host import Host
from repro.cluster.vm import Vm, VmState
from repro.scheduling.actions import Action

__all__ = ["SchedulingContext", "SchedulingPolicy"]


class SchedulingContext:
    """Read-only view handed to policies each scheduling round.

    Attributes
    ----------
    now:
        Current simulation time.
    hosts:
        All hosts in id order, whatever their state; policies must check
        :attr:`~repro.cluster.host.Host.is_available` themselves (the
        score matrix does it through the P_req/P_res infinities).
    queued:
        VMs waiting in the virtual host, in arrival order.
    placed:
        VMs currently resident on hosts (running, creating or migrating).
        May be provided lazily through ``placed_fn``: the engine's round
        builds one context per round, but queue-only policies (and the
        plain power manager) never look at the placed set, so at 10k
        hosts the O(live VMs) tuple is only materialized when some
        consumer actually reads it.  The tuple is built on first access
        and cached, so every reader sees one consistent snapshot.
    node_counts:
        Optional zero-argument callable returning exact
        ``(working, online)`` node counts.  The engine wires this to the
        metrics collector's delta-maintained totals so the λ controller's
        every-round measurement is O(dirty hosts) instead of a scan over
        the whole machine inventory; hand-built contexts leave it
        ``None`` and the power manager falls back to scanning ``hosts``.
    """

    __slots__ = ("now", "hosts", "queued", "node_counts", "_placed", "_placed_fn")

    def __init__(
        self,
        now: float,
        hosts: Sequence[Host],
        queued: Sequence[Vm],
        placed: Optional[Sequence[Vm]] = None,
        *,
        placed_fn: Optional[Callable[[], Sequence[Vm]]] = None,
        node_counts: Optional[Callable[[], Tuple[int, int]]] = None,
    ) -> None:
        self.now = now
        self.hosts = hosts
        self.queued = queued
        self.node_counts = node_counts
        self._placed_fn = placed_fn
        if placed is None and placed_fn is None:
            placed = ()
        self._placed: Optional[Tuple[Vm, ...]] = (
            tuple(placed) if placed is not None else None
        )

    @property
    def placed(self) -> Tuple[Vm, ...]:
        """Placed VMs, materialized from ``placed_fn`` on first access."""
        if self._placed is None:
            self._placed = tuple(self._placed_fn())
        return self._placed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = len(self._placed) if self._placed is not None else "lazy"
        return (
            f"SchedulingContext(now={self.now}, hosts={len(self.hosts)}, "
            f"queued={len(self.queued)}, placed={placed})"
        )

    @property
    def movable(self) -> List[Vm]:
        """Placed VMs eligible for migration.

        VMs with an operation in flight are pinned (the paper assigns them
        an infinite penalty away from their host, §III-A-3).
        """
        return [vm for vm in self.placed if vm.state is VmState.RUNNING]

    def host_by_id(self, host_id: int) -> Host:
        """Look up a host by id."""
        for h in self.hosts:
            if h.host_id == host_id:
                return h
        raise KeyError(host_id)


class SchedulingPolicy:
    """Base class for schedulers.

    Subclasses implement :meth:`decide`.  ``supports_migration`` advertises
    whether the policy ever emits :class:`~repro.scheduling.actions.Migrate`
    (the engine uses it purely for reporting).
    """

    #: Human-readable name used in result tables.
    name: str = "abstract"
    #: Whether the policy emits migrations.
    supports_migration: bool = False

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        """Return the actions to apply this round."""
        raise NotImplementedError

    def host_shutdown_ranking(self, ctx: SchedulingContext, candidates: List[Host]) -> List[Host]:
        """Order idle hosts by shutdown preference (first = shut down first).

        The default prefers shutting down the slowest class (highest
        creation overhead) and, within a class, the highest id.  The
        score-based policy overrides this with its matrix-derived host
        score, as §III-C describes.
        """
        return sorted(
            candidates,
            key=lambda h: (-h.spec.creation_s, -h.host_id),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
