"""Actions emitted by scheduling policies and the power manager.

The engine's actuators (:mod:`repro.engine.actuators`) translate these into
simulated operations: a :class:`Place` becomes a VM creation with the
host-class creation overhead; a :class:`Migrate` becomes a live migration
with overhead legs on both hosts; :class:`TurnOn`/:class:`TurnOff` drive
the physical machine lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Action", "Place", "Migrate", "TurnOn", "TurnOff"]


@dataclass(frozen=True)
class Action:
    """Base class for scheduling decisions."""


@dataclass(frozen=True)
class Place(Action):
    """Create (or re-create) a queued VM on a host."""

    vm_id: int
    host_id: int


@dataclass(frozen=True)
class Migrate(Action):
    """Live-migrate a running VM to a destination host."""

    vm_id: int
    dst_host_id: int


@dataclass(frozen=True)
class TurnOn(Action):
    """Boot a powered-off machine."""

    host_id: int


@dataclass(frozen=True)
class TurnOff(Action):
    """Shut down an idle machine."""

    host_id: int
