"""Dynamic λ thresholds — §VI's "new enhancements ... such as dynamic
thresholds", built as a feedback controller.

§V-A ends: "A next step would be to dynamically adjust these thresholds,
which is part of our future work."  :class:`AdaptivePowerManager` is that
step: every ``period_s`` it inspects the live cluster state and nudges
λmin within configured bounds —

* **tighten** (lower λmin → more spares) when any queued or running VM is
  projected to miss its deadline: capacity is the cheapest SLA medicine;
* **relax** (raise λmin → trim harder) after a full quiet period with
  spare capacity sitting idle: nobody is at risk, stop paying for slack.

The controller only ever moves λmin — λmax stays the admission trigger —
and inherits everything else (steering target, boot ranking, minexec)
from :class:`~repro.scheduling.power_manager.PowerManager`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.cluster.vm import VmState
from repro.errors import ConfigurationError
from repro.scheduling.actions import Action
from repro.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.scheduling.power_manager import PowerManager, PowerManagerConfig
from repro.sla.monitor import fulfillment

__all__ = ["AdaptivePowerManager"]


class AdaptivePowerManager(PowerManager):
    """A :class:`PowerManager` whose λmin adapts to SLA pressure.

    ``reads_context_vms`` is set: :meth:`_at_risk` inspects the context's
    queued/placed VM views, so the engine must materialize the placed
    snapshot at round start (the controller runs post-action and would
    otherwise observe this round's placements instead of the state the
    round opened with).

    Parameters
    ----------
    base:
        Starting thresholds (default: the paper's λ 30/90).
    lambda_min_floor / lambda_min_ceil:
        Bounds of the adaptation; λmin never leaves [floor, ceil] and
        never crosses λmax.
    step:
        Adjustment applied per adaptation tick.
    period_s:
        Minimum time between adjustments.

    Examples
    --------
    >>> pm = AdaptivePowerManager()
    >>> pm.config.lambda_min
    0.3
    """

    reads_context_vms = True

    def __init__(
        self,
        base: Optional[PowerManagerConfig] = None,
        *,
        lambda_min_floor: float = 0.20,
        lambda_min_ceil: float = 0.60,
        step: float = 0.05,
        period_s: float = 1800.0,
    ) -> None:
        super().__init__(base or PowerManagerConfig())
        if not 0.0 < lambda_min_floor <= lambda_min_ceil < 1.0:
            raise ConfigurationError("invalid lambda_min bounds")
        if step <= 0 or period_s <= 0:
            raise ConfigurationError("step and period must be positive")
        self.lambda_min_floor = lambda_min_floor
        self.lambda_min_ceil = lambda_min_ceil
        self.step = step
        self.period_s = period_s
        self._last_adjust = -float("inf")
        #: (time, lambda_min) history, for inspection and tests.
        self.adjustments: List[tuple] = []

    # ------------------------------------------------------------- feedback

    def _at_risk(self, ctx: SchedulingContext) -> bool:
        """Is any active VM projected to miss its deadline?"""
        for vm in ctx.queued:
            if fulfillment(vm, ctx.now) < 1.0:
                return True
        for vm in ctx.placed:
            if vm.state is VmState.RUNNING and fulfillment(vm, ctx.now) < 1.0:
                return True
        return False

    def _adapt(self, ctx: SchedulingContext) -> None:
        cfg = self.config
        if self._at_risk(ctx):
            new_min = max(cfg.lambda_min - self.step, self.lambda_min_floor)
        else:
            new_min = min(
                cfg.lambda_min + self.step,
                self.lambda_min_ceil,
                cfg.lambda_max - 0.05,
            )
        if new_min != cfg.lambda_min:
            self.config = replace(cfg, lambda_min=new_min)
            self.adjustments.append((ctx.now, new_min))

    # -------------------------------------------------------------- control

    def control(self, ctx: SchedulingContext, policy: SchedulingPolicy) -> List[Action]:
        if ctx.now - self._last_adjust >= self.period_s:
            self._last_adjust = ctx.now
            self._adapt(ctx)
        return super().control(ctx, policy)
