"""Classic task-mapping heuristics as scheduling policies (§II's lineage).

The paper's related work grounds its design in the immediate-mode mapping
heuristics of Braun et al. [12] and Armstrong et al. [13]: MET, MCT,
Min-Min, Max-Min and OLB.  In their original setting these map *tasks* to
*machines* by estimated completion time; here the estimate is the time
until a VM placed on a host would finish its job — queue wait is zero
(space sharing), so completion time is

    ECT(h, j) = creation_time(h) + runtime_penalized_by_contention(h, j).

Contention is approximated from the host's post-placement CPU
overcommitment ratio, which is exactly what stretches jobs in the engine.
None of these heuristics is power-aware; they serve as a second family of
baselines between the paper's RD/RR and BF.

* **MET** — minimum execution time: fastest host class, load-blind;
* **MCT** — minimum completion time for each task in arrival order;
* **Min-Min** — among all (task, host) pairs, repeatedly commit the task
  with the smallest best completion time;
* **Max-Min** — like Min-Min but commits the *largest* best completion
  time first (big jobs get first pick);
* **OLB** — opportunistic load balancing: the least-loaded host,
  regardless of speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.host import Host
from repro.cluster.vm import Vm
from repro.scheduling.actions import Action, Place
from repro.scheduling.base import SchedulingContext, SchedulingPolicy

__all__ = [
    "MetPolicy",
    "MctPolicy",
    "MinMinPolicy",
    "MaxMinPolicy",
    "OlbPolicy",
]


class _EctState:
    """Round-local bookkeeping of hypothetical load for ECT estimates."""

    def __init__(self, hosts) -> None:
        self.cpu: Dict[int, float] = {}
        self.mem: Dict[int, float] = {}
        self.hosts: Dict[int, Host] = {}
        for h in hosts:
            if h.is_on and not h.quarantined:
                self.cpu[h.host_id] = h.cpu_reserved()
                self.mem[h.host_id] = h.mem_reserved()
                self.hosts[h.host_id] = h

    def feasible(self, host: Host, vm: Vm) -> bool:
        if host.host_id not in self.hosts:
            return False
        if not host.meets_requirements(vm.job):
            return False
        if self.mem[host.host_id] + vm.mem_req > host.spec.mem_mb + 1e-9:
            return False
        return True

    def ect(self, host: Host, vm: Vm) -> float:
        """Estimated completion time of ``vm`` if placed on ``host`` now.

        The job's runtime stretches by the post-placement overcommitment
        ratio (demand / capacity, floored at 1) — the share solver's
        first-order effect.
        """
        cpu_after = self.cpu[host.host_id] + vm.cpu_req
        stretch = max(cpu_after / host.spec.cpu_capacity, 1.0)
        return host.spec.creation_s + vm.job.runtime_s * stretch

    def commit(self, host: Host, vm: Vm) -> None:
        self.cpu[host.host_id] += vm.cpu_req
        self.mem[host.host_id] += vm.mem_req


class _EctPolicy(SchedulingPolicy):
    """Shared scaffolding for the immediate/batch ECT heuristics."""

    supports_migration = False

    def _best_host(self, state: _EctState, ctx: SchedulingContext, vm: Vm) -> Optional[Tuple[Host, float]]:
        best: Optional[Tuple[Host, float]] = None
        for h in ctx.hosts:
            if not state.feasible(h, vm):
                continue
            ect = state.ect(h, vm)
            if best is None or ect < best[1]:
                best = (h, ect)
        return best


class MetPolicy(_EctPolicy):
    """MET: minimum execution time — pure speed, blind to load."""

    name = "MET"

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        state = _EctState(ctx.hosts)
        actions: List[Action] = []
        for vm in ctx.queued:
            best: Optional[Tuple[Host, float]] = None
            for h in ctx.hosts:
                if not state.feasible(h, vm):
                    continue
                # Execution time only: creation + dedicated runtime.
                ect = h.spec.creation_s + vm.job.runtime_s
                if best is None or ect < best[1]:
                    best = (h, ect)
            if best is not None:
                actions.append(Place(vm_id=vm.vm_id, host_id=best[0].host_id))
                state.commit(best[0], vm)
        return actions


class MctPolicy(_EctPolicy):
    """MCT: minimum completion time, tasks in arrival order."""

    name = "MCT"

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        state = _EctState(ctx.hosts)
        actions: List[Action] = []
        for vm in ctx.queued:
            best = self._best_host(state, ctx, vm)
            if best is not None:
                actions.append(Place(vm_id=vm.vm_id, host_id=best[0].host_id))
                state.commit(best[0], vm)
        return actions


class MinMinPolicy(_EctPolicy):
    """Min-Min: smallest best-completion-time task committed first."""

    name = "Min-Min"
    _take_max = False

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        state = _EctState(ctx.hosts)
        pending: List[Vm] = list(ctx.queued)
        actions: List[Action] = []
        while pending:
            chosen: Optional[Tuple[Vm, Host, float]] = None
            for vm in pending:
                best = self._best_host(state, ctx, vm)
                if best is None:
                    continue
                key = best[1]
                if chosen is None:
                    chosen = (vm, best[0], key)
                elif (key > chosen[2]) == self._take_max and key != chosen[2]:
                    chosen = (vm, best[0], key)
            if chosen is None:
                break
            vm, host, _ = chosen
            actions.append(Place(vm_id=vm.vm_id, host_id=host.host_id))
            state.commit(host, vm)
            pending.remove(vm)
        return actions


class MaxMinPolicy(MinMinPolicy):
    """Max-Min: largest best-completion-time task committed first."""

    name = "Max-Min"
    _take_max = True


class OlbPolicy(_EctPolicy):
    """OLB: the least CPU-loaded feasible host, speed-blind."""

    name = "OLB"

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        state = _EctState(ctx.hosts)
        actions: List[Action] = []
        for vm in ctx.queued:
            best: Optional[Tuple[Host, float]] = None
            for h in ctx.hosts:
                if not state.feasible(h, vm):
                    continue
                load = state.cpu[h.host_id] / h.spec.cpu_capacity
                if best is None or load < best[1]:
                    best = (h, load)
            if best is not None:
                actions.append(Place(vm_id=vm.vm_id, host_id=best[0].host_id))
                state.commit(best[0], vm)
        return actions
