"""The turn-on/turn-off controller (§III-C).

The paper drives machine power state with two thresholds on the ratio of
*working* nodes (hosting at least one VM) to *online* nodes (powered on or
booting):

* ratio > **λmax** → start booting stopped nodes (the datacenter is close
  to saturation; new jobs would have nowhere to go);
* ratio < **λmin** → start shutting down idle nodes (too much spare
  capacity is burning idle watts);
* never drop below **minexec** online machines.

Node *selection* follows the paper: machines to boot are ranked by boot
time, class speed and reliability; machines to stop are ranked by the
active policy's :meth:`~repro.scheduling.base.SchedulingPolicy.host_shutdown_ranking`
(the score-based policy overrides it with its matrix-derived host score).

Queue pressure needs no special case: when every online node is working
the ratio is 1 > λmax, so the controller boots spares exactly when the
queue would otherwise starve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.host import Host, HostState
from repro.errors import ConfigurationError
from repro.scheduling.actions import Action, TurnOff, TurnOn
from repro.scheduling.base import SchedulingContext, SchedulingPolicy

__all__ = ["PowerManagerConfig", "PowerManager"]


@dataclass(frozen=True)
class PowerManagerConfig:
    """Thresholds of the turn-on/off controller.

    The paper's experimentally chosen balance is λmin = 30 %, λmax = 90 %
    (§V-A); Tables III/IV also evaluate λmin = 40 %.
    """

    lambda_min: float = 0.30
    lambda_max: float = 0.90
    minexec: int = 1
    #: Upper bound on boots initiated in a single round (avoids herd boots
    #: on a single arrival burst; several rounds follow quickly anyway).
    max_boots_per_round: int = 10
    #: When either threshold is crossed, the controller steers the
    #: working/online ratio back to ``lambda_min + spare_margin``: the
    #: spare pool is sized *relative to λmin*, so a higher λmin directly
    #: shrinks the pool — the mechanism behind the paper's Tables III/IV,
    #: where moving λmin from 30% to 40% cuts 10–15% of the energy.
    spare_margin: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_min <= 1.0 or not 0.0 < self.lambda_max <= 1.0:
            raise ConfigurationError("lambda thresholds must be in [0, 1]")
        if self.lambda_min >= self.lambda_max:
            raise ConfigurationError("lambda_min must be below lambda_max")
        if self.minexec < 0:
            raise ConfigurationError("minexec must be >= 0")
        if self.spare_margin <= 0:
            raise ConfigurationError("spare_margin must be positive")

    @property
    def target_ratio(self) -> float:
        """The working/online ratio the controller steers toward."""
        return min(self.lambda_min + self.spare_margin, self.lambda_max)


class PowerManager:
    """Emits :class:`TurnOn`/:class:`TurnOff` actions after each round."""

    #: Whether :meth:`control` reads ``ctx.queued`` / ``ctx.placed``.
    #: The engine materializes the context's placed-VM snapshot eagerly
    #: (pre-action, as every consumer expects) only when this is set;
    #: the base controller works purely from node counts and host state,
    #: so queue-only rounds never pay for the snapshot.  Subclasses that
    #: override :meth:`control` to inspect the VM views must set it.
    reads_context_vms: bool = False

    def __init__(self, config: PowerManagerConfig | None = None) -> None:
        self.config = config or PowerManagerConfig()
        # Boot preference is a pure function of the static host specs, so
        # the full ranking is computed once per host list and boot rounds
        # just scan it for OFF machines — sorting every OFF host on every
        # boot round is O(M log M) of pure-Python key calls at 10k hosts.
        self._boot_order: List[Host] = []
        self._boot_order_src: object = None

    # ------------------------------------------------------------- measures

    @staticmethod
    def working_count(hosts: Sequence[Host]) -> int:
        """Nodes hosting at least one VM, reservation or operation."""
        return sum(1 for h in hosts if h.is_available and (h.is_working or h.operations))

    @staticmethod
    def online_count(hosts: Sequence[Host]) -> int:
        """Nodes powered on or booting."""
        return sum(1 for h in hosts if h.is_available)

    def ratio(self, hosts: Sequence[Host]) -> float:
        """working/online; defined as 1.0 when nothing is online."""
        online = self.online_count(hosts)
        if online == 0:
            return 1.0
        return self.working_count(hosts) / online

    # -------------------------------------------------------------- control

    def control(self, ctx: SchedulingContext, policy: SchedulingPolicy) -> List[Action]:
        """Compute turn-on/off actions for the current state."""
        cfg = self.config
        hosts = ctx.hosts
        # The engine supplies exact delta-maintained counts (O(dirty
        # hosts) per round); hand-built contexts fall back to a scan.
        counts = getattr(ctx, "node_counts", None)
        if counts is not None:
            working, online = counts()
        else:
            working = self.working_count(hosts)
            online = self.online_count(hosts)
        actions: List[Action] = []

        # ">=" matters at the λmax = 100 % end of the paper's Fig. 2 axis:
        # the ratio can never *exceed* 1.0, so a strict comparison would
        # leave a fully saturated datacenter without boots forever.
        if online == 0 or (online > 0 and working / max(online, 1) >= cfg.lambda_max):
            # Too few spares: boot nodes, steering back to the target ratio.
            target_online = (
                math.ceil(working / cfg.target_ratio) if working else max(cfg.minexec, 1)
            )
            # Saturation always buys at least one boot: with target_ratio
            # pinned at 1.0 (λmin near λmax, the paper's most aggressive
            # corner) the target equals the working count and the
            # controller would otherwise deadlock a full datacenter.
            need = max(target_online - online, 1)
            need = min(need, cfg.max_boots_per_round)
            # Quarantined machines sit out the boot preference until the
            # supervisor clears them.  Filtering the precomputed ranking
            # preserves exactly the order of sorting the filtered list:
            # the sort is stable and its key ignores the dynamic state.
            for h in self._boot_ranking(hosts):
                if h.state is HostState.OFF and not h.quarantined:
                    actions.append(TurnOn(host_id=h.host_id))
                    if len(actions) == need:
                        break
            return actions

        if working / online < cfg.lambda_min:
            # Too many spares: shut down idle nodes, steering back to the
            # target ratio, but never below minexec online machines.
            target_online = max(
                math.ceil(working / cfg.target_ratio), cfg.minexec, 1
            )
            surplus = online - target_online
            if surplus <= 0:
                return actions
            idle = [h for h in hosts if h.is_idle]
            ranked = policy.host_shutdown_ranking(ctx, idle)
            for h in ranked[:surplus]:
                actions.append(TurnOff(host_id=h.host_id))
        return actions

    def _boot_ranking(self, hosts: Sequence[Host]) -> List[Host]:
        """All hosts in boot-preference order, cached per host list."""
        if hosts is not self._boot_order_src or len(hosts) != len(
            self._boot_order
        ):
            self._boot_order = sorted(hosts, key=self._boot_preference)
            self._boot_order_src = hosts
        return self._boot_order

    @staticmethod
    def _boot_preference(host: Host) -> tuple:
        """Boot ordering: quick-to-use, reliable machines first (§III-C)."""
        spec = host.spec
        readiness = spec.boot_s + spec.creation_s
        return (readiness, -spec.reliability, spec.host_id)
