"""Dynamic Backfilling (DBF) — the migrating baseline of §V-D.

DBF "applies Backfilling and migrates VMs between nodes in order to
provide a higher consolidation level".  Concretely:

1. place queued VMs exactly like BF (best-fit into the most occupied
   feasible host), then
2. try to *empty* lightly loaded hosts: take the working host with the
   lowest occupation and check whether **all** of its movable VMs fit on
   other, more occupied working hosts; if so, emit the migrations.  Repeat
   for the next-least-occupied host until no host can be emptied or the
   per-round migration budget is exhausted.

Unlike the score-based policy, DBF prices nothing: it migrates whenever
consolidation is *possible*, ignoring migration cost, remaining runtime
and concurrent operations — which is precisely why the paper's Table IV
shows it migrating more (124 vs 87) for less benefit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.host import Host
from repro.cluster.vm import Vm
from repro.scheduling.actions import Action, Migrate
from repro.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.scheduling.baselines import BackfillingPolicy

__all__ = ["DynamicBackfillingPolicy"]


class DynamicBackfillingPolicy(SchedulingPolicy):
    """BF placement plus greedy host-emptying migrations.

    Parameters
    ----------
    max_migrations_per_round:
        Budget limiting churn within a single scheduling round.
    consolidation_period_s:
        Minimum time between consolidation passes; placements happen every
        round, migrations only on this cadence (same throttle the
        score-based policy uses, so the Table IV comparison is fair).
    """

    name = "DBF"
    supports_migration = True

    def __init__(
        self,
        max_migrations_per_round: int = 4,
        consolidation_period_s: float = 900.0,
    ) -> None:
        self._bf = BackfillingPolicy()
        self.max_migrations_per_round = max_migrations_per_round
        self.consolidation_period_s = consolidation_period_s
        self._next_consolidation = 0.0

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        actions: List[Action] = list(self._bf.decide(ctx))
        if ctx.now < self._next_consolidation:
            return actions
        self._next_consolidation = ctx.now + self.consolidation_period_s

        # Hypothetical load state for this round, seeded with placements.
        cpu = {h.host_id: h.cpu_reserved() for h in ctx.hosts}
        mem = {h.host_id: h.mem_reserved() for h in ctx.hosts}
        vm_count = {h.host_id: h.n_vms for h in ctx.hosts}
        by_id: Dict[int, Vm] = {vm.vm_id: vm for vm in list(ctx.queued) + list(ctx.placed)}
        for act in actions:
            vm = by_id[act.vm_id]
            cpu[act.host_id] += vm.cpu_req
            mem[act.host_id] += vm.mem_req
            vm_count[act.host_id] += 1

        hosts = {h.host_id: h for h in ctx.hosts}

        def occupation(hid: int, extra_cpu: float = 0.0, extra_mem: float = 0.0) -> float:
            spec = hosts[hid].spec
            return max(
                (cpu[hid] + extra_cpu) / spec.cpu_capacity,
                (mem[hid] + extra_mem) / spec.mem_mb,
            )

        movable_by_host: Dict[int, List[Vm]] = {}
        for vm in ctx.movable:
            if vm.host_id is not None:
                movable_by_host.setdefault(vm.host_id, []).append(vm)

        budget = self.max_migrations_per_round
        # Candidate sources: working hosts whose *entire* movable content
        # could plausibly leave (hosts with pinned VMs cannot be emptied).
        emptied: set = set()
        while budget > 0:
            sources = [
                h
                for h in ctx.hosts
                if h.is_on
                and h.host_id not in emptied
                and vm_count[h.host_id] > 0
                and movable_by_host.get(h.host_id)
                and len(movable_by_host.get(h.host_id, ()))
                == len(h.vms) + len(h.reservations)
            ]
            if not sources:
                break
            sources.sort(key=lambda h: (occupation(h.host_id), h.host_id))
            src = sources[0]
            moves = self._plan_emptying(
                src, movable_by_host[src.host_id], ctx, cpu, mem, occupation
            )
            if moves is None or len(moves) > budget:
                emptied.add(src.host_id)  # cannot (or may not) empty; skip it
                continue
            for vm, dst_id in moves:
                actions.append(Migrate(vm_id=vm.vm_id, dst_host_id=dst_id))
                cpu[src.host_id] -= vm.cpu_req
                mem[src.host_id] -= vm.mem_req
                vm_count[src.host_id] -= 1
                cpu[dst_id] += vm.cpu_req
                mem[dst_id] += vm.mem_req
                vm_count[dst_id] += 1
                budget -= 1
            emptied.add(src.host_id)
        return actions

    def _plan_emptying(
        self,
        src: Host,
        vms: List[Vm],
        ctx: SchedulingContext,
        cpu: Dict[int, float],
        mem: Dict[int, float],
        occupation,
    ) -> Optional[List[Tuple[Vm, int]]]:
        """Find destinations for *all* VMs of ``src``, or ``None``.

        Destinations must be more occupied than the source (otherwise the
        move does not consolidate) and stay feasible after the move.
        """
        src_occ = occupation(src.host_id)
        plan: List[Tuple[Vm, int]] = []
        extra_cpu: Dict[int, float] = {}
        extra_mem: Dict[int, float] = {}
        for vm in sorted(vms, key=lambda v: -v.cpu_req):  # big first
            best_id: Optional[int] = None
            best_occ = -1.0
            for h in ctx.hosts:
                hid = h.host_id
                if hid == src.host_id or not h.is_on or h.quarantined:
                    continue
                if not h.meets_requirements(vm.job):
                    continue
                occ_now = occupation(hid, extra_cpu.get(hid, 0.0), extra_mem.get(hid, 0.0))
                if occ_now <= src_occ or occ_now <= 0.0:
                    continue  # only consolidate into busier hosts
                occ_after = occupation(
                    hid,
                    extra_cpu.get(hid, 0.0) + vm.cpu_req,
                    extra_mem.get(hid, 0.0) + vm.mem_req,
                )
                if occ_after > 1.0 + 1e-9:
                    continue
                if occ_now > best_occ:
                    best_occ = occ_now
                    best_id = hid
            if best_id is None:
                return None
            plan.append((vm, best_id))
            extra_cpu[best_id] = extra_cpu.get(best_id, 0.0) + vm.cpu_req
            extra_mem[best_id] = extra_mem.get(best_id, 0.0) + vm.mem_req
        return plan
