"""Scheduling policies and the power manager.

* :mod:`repro.scheduling.actions` — the action vocabulary policies emit
  (place, migrate, turn on/off);
* :mod:`repro.scheduling.base` — the policy interface;
* :mod:`repro.scheduling.baselines` — Random (RD), Round-Robin (RR) and
  Backfilling (BF), the paper's static comparison policies (§V-B);
* :mod:`repro.scheduling.dynamic_backfilling` — Dynamic Backfilling (DBF),
  the migrating baseline of §V-D;
* :mod:`repro.scheduling.power_manager` — the λmin/λmax turn-on/off
  controller (§III-C);
* :mod:`repro.scheduling.score` — the paper's score-based policy
  (§III): penalties, score matrix, hill-climbing solver, presets
  SB0/SB1/SB2/SB.
"""

from repro.scheduling.actions import Action, Place, Migrate, TurnOn, TurnOff
from repro.scheduling.base import SchedulingPolicy, SchedulingContext
from repro.scheduling.baselines import RandomPolicy, RoundRobinPolicy, BackfillingPolicy
from repro.scheduling.dynamic_backfilling import DynamicBackfillingPolicy
from repro.scheduling.heuristics import (
    MaxMinPolicy,
    MctPolicy,
    MetPolicy,
    MinMinPolicy,
    OlbPolicy,
)
from repro.scheduling.adaptive import AdaptivePowerManager
from repro.scheduling.power_manager import PowerManager, PowerManagerConfig
from repro.scheduling.score import (
    ScoreConfig,
    ScoreBasedPolicy,
    ScoreMatrixBuilder,
    hill_climb,
)

__all__ = [
    "Action",
    "Place",
    "Migrate",
    "TurnOn",
    "TurnOff",
    "SchedulingPolicy",
    "SchedulingContext",
    "RandomPolicy",
    "RoundRobinPolicy",
    "BackfillingPolicy",
    "DynamicBackfillingPolicy",
    "MetPolicy",
    "MctPolicy",
    "MinMinPolicy",
    "MaxMinPolicy",
    "OlbPolicy",
    "AdaptivePowerManager",
    "PowerManager",
    "PowerManagerConfig",
    "ScoreConfig",
    "ScoreBasedPolicy",
    "ScoreMatrixBuilder",
    "hill_climb",
]
