"""The paper's static baseline policies (§V-B).

* **Random (RD)** — "assigns the tasks randomly": each task is bound, at
  arrival, to a uniformly random node of the datacenter, with no regard to
  power state or load.  If the node is off it must be booted; if its
  memory is busy the task waits in that node's local queue; its CPU may be
  overcommitted (the Xen credit scheduler then squeezes every guest).
* **Round Robin (RR)** — "assigns a task to each available node": the same
  binding discipline, but cycling over the node list — "a maximization of
  the amount of resources to a task but also a sparse usage of the
  resources".  Spreading touches the maximum number of nodes, which is
  what makes RR the *worst* power consumer in the paper's Table II.
* **Backfilling (BF)** — "tries to fill as much as possible the nodes":
  best-fit placement into the most occupied **online** host that still has
  room (occupation ≤ 1 after placement), never overcommitting and never
  binding to a specific node in advance.

RD and RR are deliberately *static*: a task waits for its bound node even
when other nodes sit idle (no migration, no rebinding).  That node-local
queueing — on top of boot waits and CPU contention — is what produces the
catastrophic delays of the paper's Table II, while the bound-node spread
keeps far more machines on than consolidating policies need.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.host import Host, HostState
from repro.cluster.vm import Vm
from repro.des.random import RandomStreams
from repro.scheduling.actions import Action, Place, TurnOn
from repro.scheduling.base import SchedulingContext, SchedulingPolicy

__all__ = ["RandomPolicy", "RoundRobinPolicy", "BackfillingPolicy"]


class _StickyBindingPolicy(SchedulingPolicy):
    """Common machinery of the static, node-binding policies (RD/RR).

    Subclasses implement :meth:`_pick` to choose the node a newly arrived
    task is bound to.  The binding is *exclusive*: the task gets the whole
    machine ("maximization of the amount of resources to a task").  Each
    round the policy then:

    * boots bound nodes that are off (emitting :class:`TurnOn`),
    * places every queued VM whose bound node is on and **empty**,
    * leaves everyone else waiting in their node's local queue — the
      defining pathology of static allocation: a task waits for its node
      even while other machines sit idle.
    """

    supports_migration = False

    def __init__(self) -> None:
        self._binding: Dict[int, int] = {}

    def _pick(self, ctx: SchedulingContext, vm: Vm, candidates: List[Host]) -> Optional[Host]:
        """Choose the node to bind ``vm`` to; ``None`` leaves it unbound."""
        raise NotImplementedError

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        actions: List[Action] = []
        boot_requested: set = set()
        claimed: set = set()
        for vm in ctx.queued:
            host_id = self._binding.get(vm.vm_id)
            host: Optional[Host] = None
            if host_id is not None:
                host = ctx.host_by_id(host_id)
                if host.state is HostState.FAILED:
                    host = None  # rebind: the node is gone
            if host is None:
                candidates = [
                    h
                    for h in ctx.hosts
                    if h.state is not HostState.FAILED
                    and not h.quarantined
                    and h.meets_requirements(vm.job)
                ]
                if not candidates:
                    continue
                host = self._pick(ctx, vm, candidates)
                if host is None:
                    continue  # nothing acceptable now; retry next round
                self._binding[vm.vm_id] = host.host_id
                vm.exclusive = True

            if host.state is HostState.OFF:
                if host.host_id not in boot_requested:
                    actions.append(TurnOn(host_id=host.host_id))
                    boot_requested.add(host.host_id)
                continue
            if not host.is_on:
                continue  # booting: keep waiting
            if host.n_vms > 0 or host.host_id in claimed:
                continue  # node-local queue: wait for *this* node to free up
            actions.append(Place(vm_id=vm.vm_id, host_id=host.host_id))
            claimed.add(host.host_id)
            del self._binding[vm.vm_id]
        return actions


class RandomPolicy(_StickyBindingPolicy):
    """RD: bind each task to a uniformly random *online* node.

    Pure power-blind randomness: the pick ignores how loaded the node is,
    so tasks stack up in node-local queues behind whatever landed there
    first — even while the λ controller keeps booting fresh machines for
    the next arrivals.  That combination (old tasks stuck on busy nodes,
    new tasks scattering onto newly booted ones) is what gives the paper's
    RD row both a *high* online count and a *terrible* satisfaction.
    Only when nothing is online at all (cold night) does RD fall back to a
    random off machine.
    """

    name = "RD"

    def __init__(self, streams: Optional[RandomStreams] = None) -> None:
        super().__init__()
        self._rng = (streams or RandomStreams(seed=0)).get("policy.random")

    def _pick(self, ctx: SchedulingContext, vm: Vm, candidates: List[Host]) -> Optional[Host]:
        online = [h for h in candidates if h.is_available]
        pool = online if online else candidates
        return pool[int(self._rng.integers(len(pool)))]


class RoundRobinPolicy(_StickyBindingPolicy):
    """RR: bind tasks to the datacenter's nodes in blind cyclic id order.

    "Assigns a task to each available node, which implies a maximization
    of the amount of resources to a task but also a sparse usage of the
    resources": the cursor sweeps the *whole* machine list — off machines
    get booted, busy ones get a local queue entry — so RR touches the
    maximum number of distinct nodes.  That sparse sweep is what makes RR
    the worst power consumer of Table II (even worse than RD, which at
    least confines itself to machines already online), while the blind
    stacking during sustained load still costs it a large slice of SLA.
    """

    name = "RR"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    def _pick(self, ctx: SchedulingContext, vm: Vm, candidates: List[Host]) -> Optional[Host]:
        candidates = sorted(candidates, key=lambda h: h.host_id)
        host = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return host


class BackfillingPolicy(SchedulingPolicy):
    """BF: best-fit placement into the most occupied online host with room.

    Queued VMs are considered in arrival order (FCFS with backfilling
    semantics: a job that does not fit anywhere is skipped and later,
    smaller jobs may still be placed — the classic backfilling idea mapped
    to space sharing).
    """

    name = "BF"
    supports_migration = False

    def decide(self, ctx: SchedulingContext) -> List[Action]:
        actions: List[Action] = []
        # Track this round's hypothetical additions so multiple placements
        # within one round stay feasible.
        cpu_extra = {h.host_id: 0.0 for h in ctx.hosts}
        mem_extra = {h.host_id: 0.0 for h in ctx.hosts}

        for vm in ctx.queued:
            best: Optional[Host] = None
            best_occ = -1.0
            for h in ctx.hosts:
                if not h.is_on or h.quarantined or not h.meets_requirements(vm.job):
                    continue
                occ_after = max(
                    (h.cpu_reserved(cpu_extra[h.host_id] + vm.cpu_req))
                    / h.spec.cpu_capacity,
                    (h.mem_reserved(mem_extra[h.host_id] + vm.mem_req))
                    / h.spec.mem_mb,
                )
                if occ_after > 1.0 + 1e-9:
                    continue
                occ_now = max(
                    h.cpu_reserved(cpu_extra[h.host_id]) / h.spec.cpu_capacity,
                    h.mem_reserved(mem_extra[h.host_id]) / h.spec.mem_mb,
                )
                if occ_now > best_occ:
                    best_occ = occ_now
                    best = h
            if best is None:
                continue  # stays queued; power manager may boot a node
            actions.append(Place(vm_id=vm.vm_id, host_id=best.host_id))
            cpu_extra[best.host_id] += vm.cpu_req
            mem_extra[best.host_id] += vm.mem_req
        return actions
