"""Terminal-friendly visualization helpers.

The paper's figures are surfaces (Figs. 2-3) and time series (Fig. 1).
Without a plotting stack, these helpers render them as text: a shaded
block heat map for λ-threshold surfaces and a braille-free sparkline for
power traces.  Both are deliberately dependency-free and used by the CLI
and the examples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["sparkline", "heatmap", "series_panel"]

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"
_SHADE_CHARS = " ░▒▓█"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """A one-line sparkline of a series, resampled to ``width`` columns.

    Examples
    --------
    >>> sparkline([0, 1, 2, 3], width=4)
    ' ▃▅█'
    """
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    # Resample by block averaging.
    idx = np.linspace(0, data.size, width + 1).astype(int)
    cols = [data[a:b].mean() if b > a else data[min(a, data.size - 1)]
            for a, b in zip(idx[:-1], idx[1:])]
    lo, hi = float(np.min(cols)), float(np.max(cols))
    span = hi - lo
    out = []
    for v in cols:
        frac = 0.0 if span <= 0 else (v - lo) / span
        out.append(_SPARK_CHARS[round(frac * (len(_SPARK_CHARS) - 1))])
    return "".join(out)


def heatmap(
    cells: Dict[Tuple[float, float], float],
    *,
    row_label: str = "y",
    col_label: str = "x",
    fmt: str = ".0f",
    invert: bool = False,
) -> str:
    """A shaded grid of (row, col) -> value with numeric annotations.

    ``invert=True`` shades *low* values darkest (useful when low = good,
    e.g. power consumption).
    """
    if not cells:
        return "(empty)"
    rows = sorted({r for r, _ in cells})
    cols = sorted({c for _, c in cells})
    values = [v for v in cells.values()]
    lo, hi = min(values), max(values)
    span = hi - lo

    def shade(v: float) -> str:
        frac = 0.0 if span <= 0 else (v - lo) / span
        if invert:
            frac = 1.0 - frac
        return _SHADE_CHARS[round(frac * (len(_SHADE_CHARS) - 1))]

    width = max(len(format(v, fmt)) for v in values) + 2
    lines = [
        f"{row_label}\\{col_label}".ljust(10)
        + "".join(format(c, "g").rjust(width) for c in cols)
    ]
    for r in rows:
        cells_txt = []
        for c in cols:
            v = cells.get((r, c))
            if v is None:
                cells_txt.append("·".rjust(width))
            else:
                cells_txt.append((shade(v) + format(v, fmt)).rjust(width))
        lines.append(format(r, "g").ljust(10) + "".join(cells_txt))
    return "\n".join(lines)


def series_panel(
    labelled_series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 72,
) -> str:
    """Stacked labelled sparklines sharing a width (Fig. 1-style panel)."""
    label_w = max((len(label) for label, _ in labelled_series), default=0)
    lines = []
    for label, series in labelled_series:
        data = list(series)
        suffix = ""
        if data:
            suffix = f"  [{min(data):.0f}..{max(data):.0f}]"
        lines.append(f"{label.rjust(label_w)} {sparkline(data, width)}{suffix}")
    return "\n".join(lines)
