"""Tariffs: what compute earns and what energy costs.

Revenue follows the SLA contract the paper defines: the client's
satisfaction S ∈ [0, 100] is exactly the fraction of the agreed price the
provider collects (a job delivered past twice its deadline earns
nothing — the client walked away).  Energy is billed per kWh, optionally
with a day/night time-of-use split, which is what makes *when* the
datacenter burns power an economic decision, not only how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import DAY, HOUR

__all__ = ["TimeOfUseTariff", "PricingModel"]


@dataclass(frozen=True)
class TimeOfUseTariff:
    """Energy price with peak/off-peak windows (local-time hours)."""

    offpeak_eur_per_kwh: float = 0.08
    peak_eur_per_kwh: float = 0.16
    peak_start_h: float = 8.0
    peak_end_h: float = 22.0

    def __post_init__(self) -> None:
        if self.offpeak_eur_per_kwh < 0 or self.peak_eur_per_kwh < 0:
            raise ConfigurationError("tariffs must be non-negative")
        if not 0.0 <= self.peak_start_h < self.peak_end_h <= 24.0:
            raise ConfigurationError("invalid peak window")

    def price_at(self, t_s: float) -> float:
        """€/kWh at simulation time ``t_s`` (t=0 is midnight Monday)."""
        hour = (t_s % DAY) / HOUR
        if self.peak_start_h <= hour < self.peak_end_h:
            return self.peak_eur_per_kwh
        return self.offpeak_eur_per_kwh

    @property
    def mean_price(self) -> float:
        """Time-averaged €/kWh over a day."""
        peak_hours = self.peak_end_h - self.peak_start_h
        return (
            self.peak_eur_per_kwh * peak_hours
            + self.offpeak_eur_per_kwh * (24.0 - peak_hours)
        ) / 24.0


@dataclass(frozen=True)
class PricingModel:
    """The provider's full tariff.

    Attributes
    ----------
    eur_per_core_hour:
        Agreed price of one dedicated core-hour at full satisfaction.
    energy:
        Electricity tariff; ``None`` means the flat ``flat_eur_per_kwh``.
    flat_eur_per_kwh:
        Flat electricity price when no time-of-use tariff is given.
    """

    eur_per_core_hour: float = 0.05
    energy: Optional[TimeOfUseTariff] = None
    flat_eur_per_kwh: float = 0.12

    def __post_init__(self) -> None:
        if self.eur_per_core_hour < 0 or self.flat_eur_per_kwh < 0:
            raise ConfigurationError("prices must be non-negative")

    def job_revenue(self, core_hours: float, satisfaction: float) -> float:
        """Earnings from one job: contract price × satisfaction fraction."""
        if not 0.0 <= satisfaction <= 100.0:
            raise ConfigurationError("satisfaction must be in [0, 100]")
        return core_hours * self.eur_per_core_hour * (satisfaction / 100.0)

    def energy_price_at(self, t_s: float) -> float:
        """€/kWh at a simulation instant."""
        if self.energy is not None:
            return self.energy.price_at(t_s)
        return self.flat_eur_per_kwh

    @property
    def mean_energy_price(self) -> float:
        """Time-averaged €/kWh."""
        if self.energy is not None:
            return self.energy.mean_price
        return self.flat_eur_per_kwh
