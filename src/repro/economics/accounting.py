"""Profit-and-loss accounting for a finished simulation.

Revenue is per-job (contract price × delivered satisfaction); energy cost
is the run's exact energy integral priced at the tariff.  When the
tariff is time-of-use and the run recorded its power series, the cost is
integrated against the instantaneous price; otherwise the mean price
applies — the difference is itself interesting (consolidation shifts
*when* power is burned, not only how much).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.economics.pricing import PricingModel
from repro.engine.datacenter import DatacenterSimulation
from repro.engine.results import SimulationResult
from repro.errors import ConfigurationError
from repro.units import HOUR
from repro.workload.job import Job

__all__ = ["ProfitStatement", "assess", "revenue_of_jobs", "energy_cost"]


@dataclass(frozen=True)
class ProfitStatement:
    """One run's economics."""

    revenue_eur: float
    energy_cost_eur: float
    n_jobs: int
    energy_kwh: float

    @property
    def profit_eur(self) -> float:
        """Net: revenue minus energy cost."""
        return self.revenue_eur - self.energy_cost_eur

    @property
    def margin(self) -> float:
        """Profit as a fraction of revenue (0 when nothing was earned)."""
        return self.profit_eur / self.revenue_eur if self.revenue_eur > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"revenue €{self.revenue_eur:.2f} − energy €{self.energy_cost_eur:.2f} "
            f"= profit €{self.profit_eur:.2f} (margin {self.margin:.0%}, "
            f"{self.n_jobs} jobs, {self.energy_kwh:.1f} kWh)"
        )


def revenue_of_jobs(jobs: Iterable[Job], pricing: PricingModel) -> float:
    """Σ per-job revenue: dedicated core-hours × price × satisfaction."""
    total = 0.0
    for job in jobs:
        core_hours = job.runtime_s * job.cores / HOUR
        total += pricing.job_revenue(core_hours, job.satisfaction())
    return total


def energy_cost(
    result: SimulationResult,
    pricing: PricingModel,
    power_steps: Optional[tuple] = None,
) -> float:
    """Energy bill of a run.

    With ``power_steps`` (the recorded ``(times, watts)`` step function),
    integrates watts × instantaneous price exactly; otherwise uses the
    tariff's mean price on the total kWh.
    """
    if power_steps is None or pricing.energy is None:
        return result.energy_kwh * pricing.mean_energy_price
    times, watts = power_steps
    cost = 0.0
    for i in range(len(times) - 1):
        cost += _segment_cost(times[i], times[i + 1], watts[i], pricing.energy)
    # Tail segment to the horizon.
    if times and result.horizon_s > times[-1]:
        cost += _segment_cost(times[-1], result.horizon_s, watts[-1], pricing.energy)
    return cost


def _segment_cost(t0: float, t1: float, watts: float, tariff) -> float:
    """Exact cost of a constant-watts segment across tariff boundaries."""
    from repro.units import DAY

    cost = 0.0
    t = float(t0)
    while t < t1 - 1e-9:
        day0 = (t // DAY) * DAY
        boundaries = (
            day0 + tariff.peak_start_h * HOUR,
            day0 + tariff.peak_end_h * HOUR,
            day0 + DAY,
        )
        nxt = min((b for b in boundaries if b > t + 1e-9), default=t1)
        seg_end = min(nxt, t1)
        kwh = watts * (seg_end - t) / HOUR / 1000.0
        cost += kwh * tariff.price_at(t)
        t = seg_end
    return cost


def assess(
    engine: DatacenterSimulation,
    pricing: Optional[PricingModel] = None,
) -> ProfitStatement:
    """Full P&L of a finished run (needs the engine for per-job data)."""
    pricing = pricing or PricingModel()
    result = engine.run()  # idempotent: returns the cached result
    jobs = [vm.job for vm in engine.vms.values()]
    if not jobs:
        raise ConfigurationError("run produced no jobs to bill")
    steps = None
    if pricing.energy is not None and engine.config.record_power_series:
        steps = engine.metrics.datacenter_power.steps()
    return ProfitStatement(
        revenue_eur=revenue_of_jobs(jobs, pricing),
        energy_cost_eur=energy_cost(result, pricing, steps),
        n_jobs=len(jobs),
        energy_kwh=result.energy_kwh,
    )
