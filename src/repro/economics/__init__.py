"""Provider economics: revenue, energy cost, and profit-driven tuning.

The paper repeatedly defers the money question — "global revenue" (§I),
"revenue factors are not included in the experimentation at this moment"
(§V), "an automatic setting according with economical parameters" (§V-E),
"economical decision making" (§VI).  This package builds that layer:

* :mod:`repro.economics.pricing` — a provider's tariff: what a core-hour
  earns (discounted by the client's satisfaction — the SLA *is* the
  contract) and what a kWh costs, optionally time-of-use;
* :mod:`repro.economics.accounting` — turn a finished simulation into a
  profit-and-loss statement;
* :mod:`repro.economics.optimizer` — the deferred "automatic setting":
  search the (λmin, λmax, C_e, C_f) space for the profit-maximizing
  configuration of the score-based policy.
"""

from repro.economics.pricing import PricingModel, TimeOfUseTariff
from repro.economics.accounting import ProfitStatement, assess
from repro.economics.optimizer import EconomicOptimizer, OptimizationOutcome

__all__ = [
    "PricingModel",
    "TimeOfUseTariff",
    "ProfitStatement",
    "assess",
    "EconomicOptimizer",
    "OptimizationOutcome",
]
