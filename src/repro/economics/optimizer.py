"""The paper's deferred "automatic setting according with economical
parameters" (§V-E): profit-driven configuration search.

§V-A tunes λmin/λmax by eyeballing the power/SLA trade-off; §V-E tunes
C_e/C_f the same way; both sections close with "future work will include
an automatic setting according with economical parameters".  The
:class:`EconomicOptimizer` is that future work: it grid-searches the
configuration space, scoring each candidate by *profit* on a calibration
workload — the single number that already internalizes both sides of the
trade-off (late jobs forfeit revenue; idle machines burn cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.spec import ClusterSpec
from repro.economics.accounting import ProfitStatement, assess
from repro.economics.pricing import PricingModel
from repro.engine.config import EngineConfig
from repro.engine.datacenter import DatacenterSimulation
from repro.errors import ConfigurationError
from repro.scheduling.power_manager import PowerManagerConfig
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy
from repro.workload.trace import Trace

__all__ = ["CandidateResult", "OptimizationOutcome", "EconomicOptimizer"]


@dataclass(frozen=True)
class CandidateResult:
    """One evaluated configuration."""

    lambda_min: float
    lambda_max: float
    c_empty: float
    c_fill: float
    statement: ProfitStatement
    satisfaction: float

    @property
    def profit_eur(self) -> float:
        """Net profit of this configuration on the calibration workload."""
        return self.statement.profit_eur

    def label(self) -> str:
        """Compact configuration label."""
        return (
            f"λ{self.lambda_min * 100:.0f}-{self.lambda_max * 100:.0f} "
            f"Ce={self.c_empty:.0f} Cf={self.c_fill:.0f}"
        )


@dataclass(frozen=True)
class OptimizationOutcome:
    """The search's ranked outcome."""

    candidates: Tuple[CandidateResult, ...]

    @property
    def best(self) -> CandidateResult:
        """The profit-maximizing configuration."""
        return max(self.candidates, key=lambda c: c.profit_eur)

    def table(self) -> str:
        """All candidates, best first."""
        ranked = sorted(self.candidates, key=lambda c: -c.profit_eur)
        lines = [f"{'configuration':<24} {'profit €':>9} {'S (%)':>7} {'kWh':>8}"]
        for c in ranked:
            lines.append(
                f"{c.label():<24} {c.profit_eur:>9.2f} "
                f"{c.satisfaction:>7.1f} {c.statement.energy_kwh:>8.1f}"
            )
        return "\n".join(lines)


class EconomicOptimizer:
    """Grid search over (λmin, λmax, C_e, C_f) maximizing profit.

    Parameters
    ----------
    cluster / trace / pricing / engine_config:
        The calibration environment; the trace is re-used fresh per
        candidate so every configuration sees the same world.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        trace: Trace,
        pricing: Optional[PricingModel] = None,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        if len(trace) == 0:
            raise ConfigurationError("calibration trace is empty")
        self.cluster = cluster
        self.trace = trace
        self.pricing = pricing or PricingModel()
        self.engine_config = engine_config or EngineConfig()

    def evaluate(
        self,
        lambda_min: float,
        lambda_max: float,
        c_empty: float,
        c_fill: float,
    ) -> CandidateResult:
        """Run one candidate configuration and account it."""
        engine = DatacenterSimulation(
            cluster=self.cluster,
            policy=ScoreBasedPolicy(
                ScoreConfig.sb(c_empty=c_empty, c_fill=c_fill)
            ),
            trace=self.trace.fresh(),
            pm_config=PowerManagerConfig(
                lambda_min=lambda_min, lambda_max=lambda_max
            ),
            config=self.engine_config,
        )
        result = engine.run()
        statement = assess(engine, self.pricing)
        return CandidateResult(
            lambda_min=lambda_min,
            lambda_max=lambda_max,
            c_empty=c_empty,
            c_fill=c_fill,
            statement=statement,
            satisfaction=result.satisfaction,
        )

    def search(
        self,
        lambda_mins: Sequence[float] = (0.30, 0.50, 0.70),
        lambda_maxs: Sequence[float] = (0.90,),
        cost_pairs: Sequence[Tuple[float, float]] = ((0.0, 40.0), (20.0, 40.0), (60.0, 100.0)),
    ) -> OptimizationOutcome:
        """Evaluate the grid and return ranked candidates."""
        candidates: List[CandidateResult] = []
        for lo in lambda_mins:
            for hi in lambda_maxs:
                if lo >= hi:
                    continue
                for ce, cf in cost_pairs:
                    candidates.append(self.evaluate(lo, hi, ce, cf))
        if not candidates:
            raise ConfigurationError("empty search grid")
        return OptimizationOutcome(candidates=tuple(candidates))
