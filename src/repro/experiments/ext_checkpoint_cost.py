"""Extension — is ignoring checkpoint cost safe?  (§IV's modelling claim)

The paper's middleware checkpoints VMs but its simulator does not model
the cost: "this middleware has also checkpointing and caching
capabilities, with low contribution to power consumption, and for this
reason, they have not been simulated."  This experiment *verifies* that
decision: the same run with (a) no checkpointing, (b) checkpointing with
zero modelled cost (the paper's configuration), and (c) checkpointing
with a deliberately generous cost model (a full core for 10 s per host
every 30 min).  If (c) barely moves the energy/SLA needles, the paper's
simplification is justified.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_trace,
    run_policy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run the three checkpoint-cost configurations."""
    trace = paper_trace(scale=scale, seed=seed)
    configs = [
        ("no-ckpt", EngineConfig(seed=seed)),
        ("ckpt-free", EngineConfig(seed=seed, checkpoint_interval_s=1800.0)),
        (
            "ckpt-costed",
            EngineConfig(
                seed=seed,
                checkpoint_interval_s=1800.0,
                checkpoint_cpu_pct=100.0,
                checkpoint_duration_s=10.0,
            ),
        ),
    ]
    results = []
    for label, cfg in configs:
        policy = ScoreBasedPolicy(ScoreConfig.sb(), name=f"SB/{label}")
        results.append(run_policy(policy, trace, engine_config=cfg, seed=seed))

    base = results[1]
    costed = results[2]
    energy_delta = 100.0 * (costed.energy_kwh - base.energy_kwh) / base.energy_kwh
    sla_delta = costed.satisfaction - base.satisfaction
    # Chaos baseline: a *different seed* of the cost-free configuration
    # bounds the simulator's run-to-run variability; the checkpoint cost
    # only matters if it moves the needle beyond that.
    policy = ScoreBasedPolicy(ScoreConfig.sb(), name="SB/ckpt-free-reseed")
    reseeded = run_policy(
        policy, trace,
        engine_config=EngineConfig(seed=seed + 1, checkpoint_interval_s=1800.0),
        seed=seed + 1,
    )
    chaos = 100.0 * abs(reseeded.energy_kwh - base.energy_kwh) / base.energy_kwh
    rows = [
        {
            "config": label,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
        }
        for (label, _), r in zip(configs, results)
    ]
    verdict = (
        "justified (below the simulator's own seed-to-seed variability)"
        if abs(energy_delta) <= max(chaos, 1.0)
        else "worth revisiting"
    )
    text = results_table(results) + (
        f"\ncosting checkpoints changes energy by {energy_delta:+.2f} % and "
        f"satisfaction by {sla_delta:+.2f} points; "
        f"seed-to-seed variability is ±{chaos:.2f} % — the paper's "
        f"decision not to simulate them is {verdict}"
    )
    return ExperimentOutput(
        exp_id="ext_checkpoint_cost",
        title="Verifying the 'checkpoint cost is negligible' modelling claim",
        rows=rows,
        text=text,
        paper_reference=(
            "§IV: checkpointing/caching have 'low contribution to power "
            "consumption, and for this reason, they have not been "
            "simulated' — stated, not measured; measured here."
        ),
    )
