"""Figures 2 & 3 — the λmin × λmax power/satisfaction trade-off surfaces.

The paper sweeps the turn-on/off thresholds with the score-based policy
and shows (Fig. 2) that higher thresholds — shutting down earlier,
booting later — cut power dramatically, while (Fig. 3) client
satisfaction degrades as the mechanism gets more aggressive.  The
experimentally chosen balance is λmin = 30 %, λmax = 90 %.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_trace,
    run_policy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run", "sweep"]

#: Default sweep grid (a representative subset of the paper's 10..90 /
#: 20..100 axes; pass custom grids to :func:`sweep` for the full surface).
#: λmin = 90 % matters: that is where the spare pool vanishes and Fig. 3's
#: satisfaction penalty becomes visible.
DEFAULT_LAMBDA_MIN: Tuple[float, ...] = (0.10, 0.30, 0.50, 0.70, 0.90)
DEFAULT_LAMBDA_MAX: Tuple[float, ...] = (0.50, 0.70, 0.90, 1.00)


def sweep(
    lambda_mins: Sequence[float] = DEFAULT_LAMBDA_MIN,
    lambda_maxs: Sequence[float] = DEFAULT_LAMBDA_MAX,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> List[Dict[str, float]]:
    """Run the grid; one full simulation per (λmin, λmax) cell."""
    trace = paper_trace(scale=scale, seed=seed)
    cells: List[Dict[str, float]] = []
    for lo in lambda_mins:
        for hi in lambda_maxs:
            if lo >= hi:
                continue
            result = run_policy(
                ScoreBasedPolicy(ScoreConfig.sb()),
                trace,
                pm_config=lambda_config(lo, hi),
                seed=seed,
            )
            cells.append(
                {
                    "lambda_min": lo,
                    "lambda_max": hi,
                    "power_kwh": result.energy_kwh,
                    "satisfaction": result.satisfaction,
                    "avg_online": result.avg_online,
                }
            )
    return cells


def _surface(cells: List[Dict[str, float]], key: str, fmt: str) -> str:
    los = sorted({c["lambda_min"] for c in cells})
    his = sorted({c["lambda_max"] for c in cells})
    by_pos = {(c["lambda_min"], c["lambda_max"]): c[key] for c in cells}
    lines = ["λmin \\ λmax  " + "  ".join(f"{h * 100:>7.0f}" for h in his)]
    for lo in los:
        row = [f"{lo * 100:>10.0f}  "]
        for hi in his:
            v = by_pos.get((lo, hi))
            row.append("      —" if v is None else format(v, fmt).rjust(7))
        lines.append("  ".join(row))
    return "\n".join(lines)


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate both surfaces on the default grid."""
    cells = sweep(scale=scale, seed=seed)
    text = (
        "Figure 2 — power consumption (kWh):\n"
        + _surface(cells, "power_kwh", ".1f")
        + "\n\nFigure 3 — client satisfaction S (%):\n"
        + _surface(cells, "satisfaction", ".1f")
    )
    return ExperimentOutput(
        exp_id="figures2_3",
        title="Turn-on/off threshold trade-off (score-based policy)",
        text=text,
        rows=cells,
        paper_reference=(
            "Fig. 2: power falls from ~3000 kWh at passive thresholds to "
            "~500 kWh at aggressive ones (higher λmax and higher λmin both "
            "reduce power).  Fig. 3: S decays from ~100 % to ~84 % as the "
            "mechanism gets more aggressive.  Chosen balance: λ 30/90."
        ),
        notes=(
            "Grid is a representative subset of the paper's axes; "
            "sweep() accepts the full 10..90 × 20..100 grid."
        ),
    )
