"""Multi-seed replication statistics.

The paper evaluates on a single trace (one real week).  A reproduction
can do better: re-run a configuration across K independently generated
weeks and report mean ± a confidence half-width, quantifying how much of
a headline number is signal.  Used by the ``ablation_seeds`` experiment
to put error bars on the "SB @ λ40-90 saves ~X % vs BF" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.engine.results import SimulationResult
from repro.errors import ConfigurationError

__all__ = ["ReplicatedMetric", "replicate", "summarize"]

#: Two-sided 95 % t critical values for small sample sizes (df = n - 1).
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean ± 95 % CI of one metric over K replications."""

    name: str
    values: tuple
    mean: float
    std: float
    ci95: float

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.1f} ± {self.ci95:.1f} (n={self.n})"


def summarize(name: str, values: Sequence[float]) -> ReplicatedMetric:
    """Mean, std and a 95 % t-interval half-width for a small sample."""
    vals = [float(v) for v in values]
    if len(vals) < 2:
        raise ConfigurationError("need at least two replications")
    arr = np.asarray(vals)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1))
    df = len(vals) - 1
    t = _T95.get(df, 1.96)
    ci95 = t * std / np.sqrt(len(vals))
    return ReplicatedMetric(
        name=name, values=tuple(vals), mean=mean, std=std, ci95=float(ci95)
    )


def replicate(
    run_one: Callable[[int], SimulationResult],
    seeds: Sequence[int],
    metrics: Sequence[str] = ("energy_kwh", "satisfaction", "migrations"),
) -> Dict[str, ReplicatedMetric]:
    """Run ``run_one(seed)`` for every seed and summarize the metrics.

    ``run_one`` should regenerate the *workload* from the seed too — the
    replication is over worlds, not just over operation jitter.
    """
    if len(seeds) < 2:
        raise ConfigurationError("need at least two seeds")
    results: List[SimulationResult] = [run_one(int(s)) for s in seeds]
    out: Dict[str, ReplicatedMetric] = {}
    for metric in metrics:
        out[metric] = summarize(
            metric, [float(getattr(r, metric)) for r in results]
        )
    return out
