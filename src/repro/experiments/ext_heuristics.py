"""Extension — the §II mapping-heuristic lineage as extra baselines.

The paper situates itself against the immediate/batch mapping heuristics
of Braun et al. (MET, MCT, Min-Min, Max-Min, OLB).  None of them is
power-aware; this experiment runs them beside BF and SB on the paper's
datacenter to show where classic completion-time mapping lands on the
energy/SLA plane — typically BF-like satisfaction at worse consolidation
(they spread by completion time, not occupancy).
"""

from __future__ import annotations

from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_trace,
    run_policy,
)
from repro.scheduling.baselines import BackfillingPolicy
from repro.scheduling.heuristics import (
    MaxMinPolicy,
    MctPolicy,
    MetPolicy,
    MinMinPolicy,
    OlbPolicy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run the five heuristics next to BF and SB."""
    trace = paper_trace(scale=scale, seed=seed)
    policies = [
        MetPolicy(),
        MctPolicy(),
        MinMinPolicy(),
        MaxMinPolicy(),
        OlbPolicy(),
        BackfillingPolicy(),
        ScoreBasedPolicy(ScoreConfig.sb()),
    ]
    results = [run_policy(p, trace, seed=seed) for p in policies]
    rows = [
        {
            "policy": r.policy,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
            "avg_online": r.avg_online,
        }
        for r in results
    ]
    return ExperimentOutput(
        exp_id="ext_heuristics",
        title="Classic mapping heuristics vs consolidation policies",
        text=results_table(results),
        rows=rows,
        paper_reference=(
            "No published numbers — §II cites MET/Min-Min/Max-Min/OLB "
            "([12], [13]) as the heuristic lineage; expectation: "
            "completion-time mapping holds SLA but wastes energy relative "
            "to occupancy-aware consolidation."
        ),
    )
