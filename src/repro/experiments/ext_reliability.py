"""Extension — reliability-aware scheduling under injected failures.

The paper's P_fault penalty (§III-A-6) and checkpoint-based recovery
(§III-C) are described but left unevaluated ("part of our future work").
This experiment builds that evaluation: a datacenter where a slice of the
nodes is flaky (F_rel < 1), failures injected from each host's
availability process, and three configurations compared on the same
workload:

* **SB** — reliability-blind (P_fault off), no checkpointing;
* **SB+fault** — P_fault steers VMs away from flaky nodes;
* **SB+fault+ckpt** — additionally recovers lost VMs from checkpoints.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.cluster.spec import ClusterSpec, HostSpec
from repro.engine.config import EngineConfig
from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_trace,
    run_policy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run", "flaky_cluster"]


def flaky_cluster(flaky_fraction: float = 0.3, reliability: float = 0.95) -> ClusterSpec:
    """The paper datacenter with a deterministic slice of flaky nodes."""
    base = ClusterSpec.paper_datacenter()
    hosts: List[HostSpec] = []
    n_flaky = round(len(base) * flaky_fraction)
    for i, spec in enumerate(base):
        if i % max(len(base) // max(n_flaky, 1), 1) == 0 and n_flaky > 0:
            hosts.append(replace(spec, reliability=reliability))
            n_flaky -= 1
        else:
            hosts.append(spec)
    return ClusterSpec(hosts)


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run the three configurations (defaults to a quarter-week horizon:
    failure handling multiplies event counts)."""
    trace = paper_trace(scale=scale, seed=seed)
    cluster = flaky_cluster()
    engine = EngineConfig(seed=seed, enable_failures=True)
    engine_ckpt = EngineConfig(
        seed=seed, enable_failures=True, checkpoint_interval_s=1800.0
    )
    runs = [
        ("SB", ScoreBasedPolicy(ScoreConfig.sb(), name="SB"), engine),
        (
            "SB+fault",
            ScoreBasedPolicy(
                ScoreConfig.sb(enable_fault=True), name="SB+fault"
            ),
            engine,
        ),
        (
            "SB+fault+ckpt",
            ScoreBasedPolicy(
                ScoreConfig.sb(enable_fault=True), name="SB+fault+ckpt"
            ),
            engine_ckpt,
        ),
    ]
    results = []
    for _, policy, cfg in runs:
        results.append(
            run_policy(
                policy,
                trace,
                cluster=cluster,
                pm_config=lambda_config(),
                engine_config=cfg,
                seed=seed,
            )
        )
    rows = [
        {
            "policy": r.policy,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
            "power_kwh": r.energy_kwh,
            "host_failures": r.host_failures,
            "checkpoint_recoveries": r.checkpoint_recoveries,
        }
        for r in results
    ]
    extra = "\n".join(
        f"{r.policy:>14}: host failures {r.host_failures}, "
        f"checkpoint recoveries {r.checkpoint_recoveries}"
        for r in results
    )
    return ExperimentOutput(
        exp_id="ext_reliability",
        title="Reliability-aware scheduling under injected failures",
        text=results_table(results) + "\n" + extra,
        rows=rows,
        paper_reference=(
            "No published numbers — §VI leaves reliability evaluation to "
            "future work; expectation from §III: fault-aware placement "
            "loses less work to failures, checkpoints recover progress."
        ),
    )
