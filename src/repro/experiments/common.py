"""Shared experiment infrastructure.

The defaults here pin down the paper's §V setup once, so every
table/figure module draws from the same environment:

* the 100-node datacenter (15 fast / 50 medium / 35 slow),
* the synthetic Grid5000 week (seed 20071001 — the Monday the real trace
  week starts on), carrying ≈6 000 CPU·h,
* λmin = 30 %, λmax = 90 % unless a sweep says otherwise,
* TH_empty = 1, C_e = 20, C_f = 40 for the score-based policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.engine.config import EngineConfig
from repro.engine.datacenter import simulate
from repro.engine.results import SimulationResult, results_table
from repro.scheduling.base import SchedulingPolicy
from repro.scheduling.power_manager import PowerManagerConfig
from repro.units import WEEK
from repro.workload.synthetic import Grid5000WeekGenerator, SyntheticConfig
from repro.workload.trace import Trace

__all__ = [
    "DEFAULT_SEED",
    "ExperimentOutput",
    "paper_cluster",
    "paper_trace",
    "run_policy",
    "lambda_config",
]

#: The Monday the paper's Grid5000 week starts on (2007-10-01).
DEFAULT_SEED = 20071001


@dataclass
class ExperimentOutput:
    """Result of one experiment module run."""

    exp_id: str
    title: str
    #: Formatted table/series text in the paper's layout.
    text: str
    #: Structured rows for tests and EXPERIMENTS.md generation.
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: The paper's published numbers for side-by-side reading.
    paper_reference: str = ""
    #: Substitutions / deviations worth noting.
    notes: str = ""

    def __str__(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", self.text]
        if self.paper_reference:
            parts += ["-- paper reported --", self.paper_reference]
        if self.notes:
            parts += ["-- notes --", self.notes]
        return "\n".join(parts)


def paper_cluster(n_hosts: Optional[int] = None) -> ClusterSpec:
    """The paper's datacenter; optionally shrunk, keeping class ratios."""
    if n_hosts is None or n_hosts >= 100:
        return ClusterSpec.paper_datacenter()
    n_fast = max(1, round(n_hosts * 0.15))
    n_slow = max(1, round(n_hosts * 0.35))
    n_medium = max(1, n_hosts - n_fast - n_slow)
    return ClusterSpec.paper_datacenter(
        n_fast=n_fast, n_medium=n_medium, n_slow=n_slow
    )


def paper_trace(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Trace:
    """The synthetic Grid5000 week, optionally shortened to ``scale``.

    ``scale=1.0`` is the paper's full week; smaller values keep the same
    statistical shape over a shorter horizon so quick runs exercise the
    identical code path.
    """
    cfg = SyntheticConfig(horizon_s=WEEK * scale)
    return Grid5000WeekGenerator(cfg, seed=seed).generate()


def lambda_config(lambda_min: float = 0.30, lambda_max: float = 0.90) -> PowerManagerConfig:
    """The λ thresholds of §V (default: the experimentally chosen 30/90)."""
    return PowerManagerConfig(lambda_min=lambda_min, lambda_max=lambda_max)


def run_policy(
    policy: SchedulingPolicy,
    trace: Trace,
    *,
    cluster: Optional[ClusterSpec] = None,
    pm_config: Optional[PowerManagerConfig] = None,
    engine_config: Optional[EngineConfig] = None,
    seed: int = DEFAULT_SEED,
) -> SimulationResult:
    """One full simulation run on a fresh copy of the trace."""
    return simulate(
        cluster=cluster or paper_cluster(),
        policy=policy,
        trace=trace,
        pm_config=pm_config or lambda_config(),
        config=engine_config or EngineConfig(seed=seed),
    )


def format_results(results: Sequence[SimulationResult], title: str = "") -> str:
    """Paper-layout table text for a list of runs."""
    return results_table(results, title=title or None)
