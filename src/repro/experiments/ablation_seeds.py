"""Ablation — error bars on the headline claim.

The paper's "15 % less power than Backfilling" comes from one simulated
week.  Here we regenerate K independent weeks (different seeds →
different arrival sequences, runtimes, jitter) and report the saving as
mean ± 95 % CI, answering the referee question the paper never had to:
*is the improvement larger than the week-to-week noise?*
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_trace,
    run_policy,
)
from repro.experiments.stats import summarize
from repro.scheduling.baselines import BackfillingPolicy
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(
    scale: float = 0.25,
    seed: int = DEFAULT_SEED,
    n_seeds: int = 4,
) -> ExperimentOutput:
    """Replicate the BF vs SB@40-90 comparison over ``n_seeds`` worlds."""
    seeds: Sequence[int] = [seed + 1000 * k for k in range(n_seeds)]
    savings = []
    bf_kwh = []
    sb_kwh = []
    sla_gap = []
    for s in seeds:
        trace = paper_trace(scale=scale, seed=s)
        bf = run_policy(BackfillingPolicy(), trace,
                        pm_config=lambda_config(), seed=s)
        sb = run_policy(
            ScoreBasedPolicy(ScoreConfig.sb()), trace,
            pm_config=lambda_config(0.40, 0.90), seed=s,
        )
        bf_kwh.append(bf.energy_kwh)
        sb_kwh.append(sb.energy_kwh)
        savings.append(100.0 * (1.0 - sb.energy_kwh / bf.energy_kwh))
        sla_gap.append(sb.satisfaction - bf.satisfaction)

    saving = summarize("energy saving (%)", savings)
    gap = summarize("satisfaction gap (pts)", sla_gap)
    rows = [
        {"seed": s, "bf_kwh": b, "sb_kwh": v, "saving_pct": sv}
        for s, b, v, sv in zip(seeds, bf_kwh, sb_kwh, savings)
    ]
    lines = [
        f"{'seed':>10} {'BF kWh':>9} {'SB@40-90 kWh':>13} {'saving %':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['seed']:>10} {row['bf_kwh']:>9.1f} "
            f"{row['sb_kwh']:>13.1f} {row['saving_pct']:>9.1f}"
        )
    lines.append("")
    lines.append(str(saving))
    lines.append(str(gap))
    significant = saving.mean - saving.ci95 > 0
    lines.append(
        "the saving is "
        + ("statistically solid (CI excludes zero)" if significant
           else "within week-to-week noise")
    )
    return ExperimentOutput(
        exp_id="ablation_seeds",
        title="Error bars on the headline energy saving",
        rows=rows,
        text="\n".join(lines),
        paper_reference=(
            "The paper reports a single week (15 % saving, Table IV); no "
            "variance is published."
        ),
    )
