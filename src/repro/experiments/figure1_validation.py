"""Figure 1 — simulator validation (real vs simulated power trace).

Runs the 7-task / ~1300 s validation script on the fine-grained noisy
testbed and on the coarse event-driven simulator, then compares total
energy and instantaneous power exactly as §IV-B does.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SEED, ExperimentOutput
from repro.validation.compare import validate_simulator
from repro.validation.testbed import PAPER_VALIDATION_TASKS

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate Fig. 1's comparison (``scale`` is accepted for protocol
    uniformity; the validation script has a fixed 1300 s length)."""
    report = validate_simulator(PAPER_VALIDATION_TASKS, seed=seed)
    lines = [
        f"real (testbed) total energy:  {report.real_energy_wh:8.1f} Wh",
        f"simulated total energy:       {report.simulated_energy_wh:8.1f} Wh",
        f"total error:                  {report.total_error_pct:+8.1f} %",
        f"instantaneous error:          {report.instantaneous_mean_abs_w:8.2f} W "
        f"(std {report.instantaneous_std_w:.2f} W)",
        f"samples:                      {len(report.times):8d} @ 1 s",
    ]
    rows = [
        {
            "real_energy_wh": report.real_energy_wh,
            "simulated_energy_wh": report.simulated_energy_wh,
            "total_error_pct": report.total_error_pct,
            "instantaneous_mean_abs_w": report.instantaneous_mean_abs_w,
            "instantaneous_std_w": report.instantaneous_std_w,
        }
    ]
    return ExperimentOutput(
        exp_id="figure1",
        title="Simulator validation (power trace, 1300 s, 7 tasks)",
        text="\n".join(lines),
        rows=rows,
        paper_reference=(
            "real 99.9 ± 1.8 Wh vs simulated 97.5 Wh (−2.4 %); "
            "instantaneous error 8.62 W, std 8.06 W"
        ),
        notes=(
            "The 'real' side is the MicroTestbed substitute (1 s sampling, "
            "measurement noise, utilization wander, background host "
            "activity the coarse model deliberately omits)."
        ),
    )
