"""Extension — scheduling under operational fault injection (chaos).

Host *crashes* (ext_reliability) are one failure mode; real control planes
mostly fight smaller fires: VM creations that fail after burning their
setup time, migrations that abort mid-transfer, machines that refuse to
boot.  :mod:`repro.cluster.faults` injects exactly those, with a
seed-derived slice of "hot" hosts whose fault rates are several times the
base rate — heterogeneity the static spec ``F_rel`` knows nothing about.

This experiment escalates the base fault rate and compares, on the same
workload:

* **SB** — chaos-blind scoring (P_fault off);
* **SB-full** — P_fault driven by the static spec ``F_rel`` (which is
  uniform here, so it cannot tell a hot host from a healthy one);
* **SB-full+obs** — P_fault driven by the engine's learned
  :class:`~repro.cluster.faults.ObservedReliability` EWMA, so repeated
  fault outcomes steer placements away from the hot hosts.

All three run under the self-healing supervisor (retry with backoff,
quarantine, re-queue), so the comparison isolates the *scoring* signal.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.cluster.faults import FaultConfig
from repro.cluster.spec import ClusterSpec
from repro.engine.config import EngineConfig
from repro.engine.results import SimulationResult, results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_cluster,
    paper_trace,
    run_policy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run", "FAULT_RATES"]

#: Escalating base fault rates (0 = control; hot hosts multiply these).
FAULT_RATES = (0.0, 0.05, 0.10)


def _engine(seed: int, rate: float, observed: bool) -> EngineConfig:
    return EngineConfig(
        seed=seed,
        faults=FaultConfig.uniform(rate) if rate > 0 else None,
        observed_reliability=observed,
        checkpoint_interval_s=1800.0,
    )


def _variants(seed: int):
    """(label, policy factory) per scoring configuration.

    Fresh policy instances per run: the observed-reliability hook and the
    consolidation clock are per-simulation state.
    """
    return (
        ("SB", lambda: ScoreBasedPolicy(ScoreConfig.sb(), name="SB"), False),
        (
            "SB-full",
            lambda: ScoreBasedPolicy(ScoreConfig.full(), name="SB-full"),
            False,
        ),
        (
            "SB-full+obs",
            lambda: ScoreBasedPolicy(
                ScoreConfig.full(use_observed_reliability=True),
                name="SB-full+obs",
            ),
            True,
        ),
    )


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Sweep fault rates × scoring variants (quarter-week horizon by
    default: supervisor recovery multiplies event counts)."""
    trace = paper_trace(scale=scale, seed=seed)
    cluster = paper_cluster()
    rows = []
    results: List[SimulationResult] = []
    for rate in FAULT_RATES:
        for label, factory, observed in _variants(seed):
            result = run_policy(
                factory(),
                trace,
                cluster=cluster,
                pm_config=lambda_config(),
                engine_config=_engine(seed, rate, observed),
                seed=seed,
            )
            result = replace(result, policy=f"{label}@{rate:.0%}")
            results.append(result)
            rows.append(
                {
                    "policy": label,
                    "fault_rate": rate,
                    "satisfaction": result.satisfaction,
                    "delay_pct": result.delay_pct,
                    "power_kwh": result.energy_kwh,
                    "sla_violations": result.sla_violations,
                    "failed_creations": result.failed_creations,
                    "aborted_migrations": result.aborted_migrations,
                    "boot_failures": result.boot_failures,
                    "quarantines": result.quarantines,
                    "mean_recovery_s": result.mean_recovery_s,
                }
            )
    extra = "\n".join(
        f"{r.policy:>16}: {r.failed_creations} failed creations, "
        f"{r.aborted_migrations} aborted migrations, "
        f"{r.boot_failures} boot failures, {r.quarantines} quarantines, "
        f"mean recovery {r.mean_recovery_s:.0f} s"
        for r in results
    )
    return ExperimentOutput(
        exp_id="ext_chaos",
        title="Operational fault injection: observed vs. static reliability",
        text=results_table(results) + "\n" + extra,
        rows=rows,
        paper_reference=(
            "No published numbers — operational chaos is beyond the paper's "
            "failure model.  Expectation: with hot hosts at several times "
            "the base fault rate, learned per-host reliability (EWMA of "
            "operation outcomes) reduces failure-induced SLA damage "
            "relative to the uniform static F_rel."
        ),
    )
