"""Ablation — matrix solvers: hill climbing vs Simulated Annealing vs Tabu.

The paper picks greedy hill climbing because an online scheduler cannot
afford slow decisions ("a too slow decision process", §II, re. the MIP
alternative) and calls the result "suboptimal ... much faster and cheaper
than evaluating all possible configurations".  This ablation quantifies
the claim end to end: the same workload scheduled with each solver inside
the full SB policy, reporting energy, SLA, migrations *and* the total
scheduler decision time.
"""

from __future__ import annotations

import time

from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_trace,
    run_policy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(scale: float = 1.0 / 14.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run SB with each solver (defaults to half a day — the
    metaheuristics make thousands of objective evaluations per round)."""
    trace = paper_trace(scale=scale, seed=seed)
    results = []
    wall = {}
    for solver in ("hill_climb", "sa", "tabu"):
        policy = ScoreBasedPolicy(
            ScoreConfig.sb(), name=f"SB/{solver}", solver=solver, solver_seed=seed
        )
        t0 = time.perf_counter()
        result = run_policy(policy, trace, seed=seed)
        wall[f"SB/{solver}"] = time.perf_counter() - t0
        results.append(result)

    rows = [
        {
            "solver": r.policy.split("/", 1)[1],
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "migrations": r.migrations,
            "wall_clock_s": wall[r.policy],
        }
        for r in results
    ]
    extra = "\n".join(
        f"{r.policy:>16}: {wall[r.policy]:6.1f} s wall clock "
        f"({r.sim_events} events)"
        for r in results
    )
    hc = rows[0]
    best_other = min(rows[1:], key=lambda r: r["power_kwh"])
    gap = 100.0 * (hc["power_kwh"] - best_other["power_kwh"]) / hc["power_kwh"]
    text = results_table(results) + "\n" + extra + (
        f"\nhill climbing is within {abs(gap):.1f} % of the best "
        f"metaheuristic's energy at a fraction of the decision time"
    )
    return ExperimentOutput(
        exp_id="ablation_solver",
        title="Matrix solving: greedy hill climbing vs metaheuristics",
        rows=rows,
        text=text,
        paper_reference=(
            "§III-B: 'Hill Climbing ... finds a suboptimal solution much "
            "faster and cheaper than evaluating all possible "
            "configurations'; §II cites Tabu/SA as the heavier "
            "alternatives."
        ),
    )
