"""Table I — virtualized server power usage.

The paper measures a 4-way Xen machine under eight VM configurations and
finds "there is no dependence in the number of VMs and in how they are
configured. The only real dependence is with the total CPU consumed."
This experiment regenerates the table on the :class:`MicroTestbed` and
checks the layout-independence claim numerically.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.common import DEFAULT_SEED, ExperimentOutput
from repro.validation.testbed import MicroTestbed

__all__ = ["run", "PAPER_ROWS"]

#: (label, per-VM loads, paper's measured watts).
PAPER_ROWS: Tuple[Tuple[str, Tuple[float, ...], float], ...] = (
    ("1 VCPU @ 100%", (100.0,), 259.0),
    ("2 VCPUs @ 200%", (200.0,), 273.0),
    ("3 VCPUs @ 300%", (300.0,), 291.0),
    ("4 VCPUs @ 400%", (400.0,), 304.0),
    ("1+1 @ 2x100%", (100.0, 100.0), 273.0),
    ("1+2 @ 100%+200%", (100.0, 200.0), 291.0),
    ("1+1+1+1 @ 4x100%", (100.0, 100.0, 100.0, 100.0), 304.0),
    ("1+1+1+1 @ 4x0%", (0.0, 0.0, 0.0, 0.0), 230.0),
)


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate Table I (``scale`` shortens the averaging window)."""
    testbed = MicroTestbed(seed=seed, background_w=0.0)
    seconds = max(int(60 * scale), 5)
    rows = []
    lines = [f"{'configuration':<20} {'measured W':>11} {'paper W':>8}"]
    for label, loads, paper_w in PAPER_ROWS:
        measured = testbed.steady_state_power(loads, seconds=seconds)
        rows.append(
            {"configuration": label, "measured_w": measured, "paper_w": paper_w}
        )
        lines.append(f"{label:<20} {measured:>11.1f} {paper_w:>8.1f}")

    # The headline claim: layout independence at equal total CPU.
    single = testbed.steady_state_power((200.0,), seconds=seconds)
    split = testbed.steady_state_power((100.0, 100.0), seconds=seconds)
    lines.append(
        f"layout independence: |P(200%) - P(100%+100%)| = {abs(single - split):.2f} W"
    )
    return ExperimentOutput(
        exp_id="table1",
        title="Virtualized server power usage",
        text="\n".join(lines),
        rows=rows,
        paper_reference=(
            "230 W idle; 259/273/291/304 W at 100/200/300/400 % total CPU; "
            "identical watts for any VM layout at equal total CPU"
        ),
        notes=(
            "Measured on the MicroTestbed substitute for the authors' 4-way "
            "machine; the TablePowerModel embeds the published curve, the "
            "testbed adds measurement noise, so agreement validates the "
            "noise/averaging pipeline and the layout-independence claim."
        ),
    )
