"""Fault-tolerant execution layer for experiment sweeps.

The sweep runner (:mod:`repro.experiments.runner`) dispatches mutually
independent, deterministic tasks — each a pure function of
``(exp_id, scale, seed)``.  This module supplies everything needed to run
such a battery to completion on imperfect hardware:

* :class:`ExecutionPolicy` — per-task bounded retries, exponential
  backoff with *deterministic* seed-derived jitter (no wall-clock RNG:
  the delay is a pure function of ``(seed, task, attempt)``), and a
  per-task wall-clock timeout;
* :func:`execute_tasks` — the executor.  In parallel mode it manages a
  :class:`~concurrent.futures.ProcessPoolExecutor`, consumes futures as
  they complete, recovers from :class:`BrokenProcessPool` by respawning
  the pool and re-submitting only the lost tasks, reaps hung workers on
  timeout, and degrades gracefully to serial in-process execution after
  repeated pool breakage;
* :class:`SweepJournal` — an append-only JSONL record of every attempt
  (task, attempt, outcome, duration, cache key) that makes interrupted
  sweeps resumable;
* :class:`SweepReport` — completed outputs plus a structured failure
  report, returned instead of raising when ``partial=True``;
* :class:`ReproFaultPlan` — a deterministic fault-injection hook
  (crash-on-nth-attempt, hang, injected raise, corrupted result) carried
  across the process boundary in the ``REPRO_FAULT_PLAN`` environment
  variable, used by the resilience test-suite and the CI fault-injection
  smoke job.

Fault attribution note: when a worker dies hard, every in-flight future
collapses with :class:`BrokenProcessPool` and the culprit cannot be
identified, so a pool breakage charges one attempt to *every* in-flight
task.  A timeout, by contrast, is attributable — only the overdue tasks
are charged; other in-flight tasks lost to the forced pool restart are
re-submitted at their current attempt number for free.

Everything here is stdlib-only and every worker entry point is a
top-level function, picklable under both fork and spawn start methods.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import multiprocessing
import os
import shutil
import signal
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    ExperimentError,
    SimulationInterrupted,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.experiments.common import ExperimentOutput

__all__ = [
    "FAULT_PLAN_ENV",
    "ExecutionPolicy",
    "FaultSpec",
    "ReproFaultPlan",
    "SweepJournal",
    "TaskSpec",
    "TaskFailure",
    "SweepReport",
    "execute_tasks",
    "run_task",
]

#: Environment variable carrying a JSON-encoded :class:`ReproFaultPlan`
#: into worker processes (fork *and* spawn inherit the environment).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code used by the injected hard-crash fault (visible in worker
#: exit statuses when debugging a faulted run).
_CRASH_EXIT_CODE = 17


# --------------------------------------------------------------- policy


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard the executor tries to finish each task.

    Attributes
    ----------
    retries:
        Extra attempts allowed per task after the first one fails
        (``0`` keeps the historical fail-fast behaviour).
    task_timeout_s:
        Per-attempt wall-clock budget.  Only enforceable in parallel
        mode — a hung task in the calling process cannot be interrupted
        portably, so serial execution ignores it.
    backoff_base_s / backoff_factor / backoff_jitter / backoff_seed:
        Delay before attempt ``n`` (n >= 1) is
        ``base * factor**(n-1) * (1 + jitter * u)`` where ``u`` in [0, 1)
        is derived from ``sha256(seed, task, attempt)`` — deterministic,
        so two runs of the same faulted sweep behave identically.
    max_pool_respawns:
        Pool breakages tolerated before degrading to serial in-process
        execution of the remaining tasks.
    partial:
        Return a :class:`SweepReport` (completed outputs + structured
        failure report) instead of raising on task failure.
    checkpoint_dir:
        Enable engine-level checkpoint/restore
        (:mod:`repro.engine.snapshot`) inside every task: each task
        snapshots into ``<checkpoint_dir>/<task_id>/`` and a retried or
        resumed attempt restores from its latest snapshot (journaled as a
        ``restored`` outcome) instead of recomputing from scratch.  The
        per-task directory is deleted once the task succeeds.
    checkpoint_sim_interval_s / checkpoint_wall_interval_s:
        Snapshot cadence forwarded to the engines (simulated seconds /
        wall seconds); with neither set, snapshots are written only on
        graceful interruption.
    max_wall_clock_s:
        Sweep-level wall-clock budget.  When exceeded, the sweep stops
        dispatching, in-flight tasks are journaled ``interrupted`` (the
        workers checkpoint on their way down), and the report comes back
        with ``interrupted=True`` — the same wind-down path a SIGTERM
        takes.
    """

    retries: int = 0
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    backoff_seed: int = 0
    max_pool_respawns: int = 2
    partial: bool = False
    checkpoint_dir: Optional[str] = None
    checkpoint_sim_interval_s: Optional[float] = None
    checkpoint_wall_interval_s: Optional[float] = None
    max_wall_clock_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigurationError("task timeout must be positive")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError("invalid backoff parameters")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError("backoff jitter must be in [0, 1]")
        if self.max_pool_respawns < 0:
            raise ConfigurationError("max_pool_respawns must be >= 0")
        for name in ("checkpoint_sim_interval_s", "checkpoint_wall_interval_s"):
            value = getattr(self, name)
            if value is not None:
                if value <= 0:
                    raise ConfigurationError(f"{name} must be positive when set")
                if self.checkpoint_dir is None:
                    raise ConfigurationError(f"{name} requires checkpoint_dir")
        if self.max_wall_clock_s is not None and self.max_wall_clock_s <= 0:
            raise ConfigurationError("max_wall_clock_s must be positive when set")

    def task_checkpoint_dir(self, task_id: str) -> Optional[str]:
        """Snapshot directory of one task (``None`` when checkpointing is off)."""
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, task_id)

    def backoff_s(self, task_id: str, attempt: int) -> float:
        """Deterministic delay before running ``attempt`` (0 = first try)."""
        if attempt <= 0 or self.backoff_base_s == 0:
            return 0.0
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        raw = f"{self.backoff_seed}:{task_id}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(raw).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.backoff_jitter * unit)


# ---------------------------------------------------------- fault plans


_FAULT_KINDS = ("raise", "crash", "hang", "corrupt", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens and on how many initial attempts.

    ``kind`` is one of ``raise`` (worker raises :class:`ExperimentError`),
    ``crash`` (worker hard-exits, breaking the process pool), ``hang``
    (worker sleeps ``hang_s``, tripping the task timeout), ``corrupt``
    (worker runs the task but returns a non-:class:`ExperimentOutput`
    payload) or ``kill`` (worker arms a timer that hard-exits the process
    ``after_s`` wall seconds into the attempt — a SIGKILL-like death
    *mid-simulation*, the scenario engine checkpoints exist for).  The
    fault fires while ``attempt < times`` and the task is clean
    afterwards, so retry-to-success paths are testable.
    """

    kind: str
    times: int = 1
    hang_s: float = 3600.0
    #: ``kill`` only: wall seconds into the attempt at which the process
    #: dies (0 dies immediately, like ``crash``).
    after_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {_FAULT_KINDS}"
            )
        if self.times < 0:
            raise ConfigurationError("fault times must be >= 0")
        if self.hang_s <= 0:
            raise ConfigurationError("hang_s must be positive")
        if self.after_s < 0:
            raise ConfigurationError("after_s must be >= 0")


@dataclass(frozen=True)
class ReproFaultPlan:
    """Deterministic fault injection, keyed by task id.

    The plan crosses the process boundary through the
    :data:`FAULT_PLAN_ENV` environment variable, so the *worker* applies
    the fault — faults only ever fire inside child processes (a process
    with a parent); serial in-master execution is immune by design,
    which is exactly what makes serial degradation a safe fallback.
    """

    faults: Dict[str, FaultSpec] = field(default_factory=dict)

    def spec_for(self, task_id: str, attempt: int) -> Optional[FaultSpec]:
        """The fault to apply at this attempt, if any."""
        spec = self.faults.get(task_id)
        if spec is not None and attempt < spec.times:
            return spec
        return None

    def to_json(self) -> str:
        return json.dumps(
            {tid: dataclasses.asdict(spec) for tid, spec in self.faults.items()},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReproFaultPlan":
        try:
            raw = json.loads(text)
            faults = {tid: FaultSpec(**spec) for tid, spec in raw.items()}
        except (ValueError, TypeError) as exc:
            raise ConfigurationError(f"invalid fault plan JSON: {exc}") from exc
        return cls(faults=faults)

    @classmethod
    def from_env(cls) -> Optional["ReproFaultPlan"]:
        text = os.environ.get(FAULT_PLAN_ENV)
        return cls.from_json(text) if text else None

    @contextmanager
    def installed(self):
        """Export the plan to the environment for the enclosed block."""
        previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = self.to_json()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = previous


def _apply_worker_fault(task_id: str, attempt: int) -> Optional[FaultSpec]:
    """Apply any pre-execution fault from the environment plan.

    Returns the spec when a post-execution fault (``corrupt``) still has
    to be applied by the caller.  No-op outside worker processes.
    """
    if multiprocessing.parent_process() is None:
        return None  # in-master (serial) execution: worker faults don't apply
    plan = ReproFaultPlan.from_env()
    spec = plan.spec_for(task_id, attempt) if plan is not None else None
    if spec is None:
        return None
    if spec.kind == "raise":
        raise ExperimentError(
            f"fault plan: injected failure for {task_id} (attempt {attempt})"
        )
    if spec.kind == "crash":
        os._exit(_CRASH_EXIT_CODE)
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
    if spec.kind == "kill":
        if spec.after_s <= 0:
            os._exit(_CRASH_EXIT_CODE)
        timer = threading.Timer(spec.after_s, os._exit, args=(_CRASH_EXIT_CODE,))
        timer.daemon = True
        timer.start()
    return spec


# -------------------------------------------------------------- journal


class SweepJournal:
    """Append-only JSONL log of sweep attempts, enabling ``--resume``.

    One record per attempt outcome::

        {"task": "table5", "attempt": 0, "outcome": "ok",
         "duration_s": 3.1, "cache_key": "ab12...", "error": ""}

    Outcomes: ``ok`` (ran to completion), ``cached`` (served from the
    on-disk cache), ``resumed`` (skipped — a previous journal run
    completed it), ``error``, ``timeout``, ``crash``, ``lost`` (in-flight
    when the pool was torn down for an unrelated timeout), and
    ``interrupted`` (in-flight at KeyboardInterrupt).
    """

    #: Outcomes that mean "this task's output is in the cache".
    DONE_OUTCOMES = frozenset({"ok", "cached", "resumed"})

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._fh = None

    def record(
        self,
        task_id: str,
        attempt: int,
        outcome: str,
        *,
        duration_s: float = 0.0,
        cache_key: str = "",
        error: str = "",
    ) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        entry = {
            "task": task_id,
            "attempt": attempt,
            "outcome": outcome,
            "duration_s": round(duration_s, 6),
            "cache_key": cache_key,
            "error": error,
        }
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read_entries(path: os.PathLike) -> List[dict]:
        """All parseable records.

        A journal whose writer was SIGKILLed mid-``write`` legitimately
        ends in a torn line; such lines (or any other corruption) are
        skipped with a warning naming the line number, so ``--resume``
        keeps working after a crash while the operator still learns the
        file was damaged.
        """
        entries: List[dict] = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        warnings.warn(
                            f"sweep journal {os.fspath(path)}: skipping "
                            f"corrupt line {lineno} (torn write?)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    if not isinstance(record, dict):
                        warnings.warn(
                            f"sweep journal {os.fspath(path)}: skipping "
                            f"non-record line {lineno}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    entries.append(record)
        except OSError:
            return []
        return entries

    @classmethod
    def completed_tasks(cls, path: os.PathLike) -> Dict[str, str]:
        """task_id -> cache_key for every task the journal saw finish."""
        done: Dict[str, str] = {}
        for entry in cls.read_entries(path):
            if entry.get("outcome") in cls.DONE_OUTCOMES:
                done[str(entry.get("task"))] = str(entry.get("cache_key", ""))
        return done


# ---------------------------------------------------------------- tasks


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable experiment invocation."""

    task_id: str
    exp_id: str
    scale: float
    seed: Optional[int]
    cache_key: str = ""


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one task, after its whole retry budget."""

    task_id: str
    error_type: str
    message: str
    attempts: int
    #: The final exception instance (for the raising, non-partial path).
    exception: Optional[BaseException] = None


@dataclass
class SweepReport:
    """Outcome of a fault-tolerant sweep: outputs plus failure report."""

    order: List[str] = field(default_factory=list)
    outputs: Dict[str, ExperimentOutput] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)
    attempts: Dict[str, int] = field(default_factory=dict)
    pool_respawns: int = 0
    timeouts: int = 0
    degraded_serial: bool = False
    #: Tasks served without running: from cache, or journal-resumed.
    cached: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)
    #: Tasks that resumed mid-simulation from an engine snapshot.
    restored: List[str] = field(default_factory=list)
    #: The sweep wound down early (SIGTERM/SIGINT or the wall-clock
    #: budget): remaining work is journaled ``interrupted`` and resumable;
    #: callers should treat this as preemption, not failure.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def ordered_outputs(self) -> List[Optional[ExperimentOutput]]:
        """Outputs in submission order (``None`` for failed tasks)."""
        return [self.outputs.get(tid) for tid in self.order]

    def failure_summary(self) -> str:
        """One line per failure, for logs and the CLI."""
        return "\n".join(
            f"{f.task_id}: {f.error_type} after {f.attempts} attempt(s): {f.message}"
            for f in self.failures
        )

    def raise_if_failed(self) -> None:
        """Raise the failure (typed when unambiguous) unless all tasks passed."""
        if not self.failures:
            return
        first = self.failures[0]
        if len(self.failures) == 1 and isinstance(first.exception, ExperimentError):
            raise first.exception
        raise ExperimentError(
            f"{len(self.failures)} task(s) failed:\n{self.failure_summary()}"
        ) from first.exception


@contextmanager
def _checkpoint_env(
    checkpoint_dir: Optional[str],
    sim_interval_s: Optional[float],
    wall_interval_s: Optional[float],
):
    """Export engine checkpoint/restore settings for the enclosed task.

    The engine folds ``REPRO_CHECKPOINT_*`` into its config and
    ``REPRO_RESTORE`` makes :func:`repro.engine.datacenter.simulate`
    resume from the newest compatible snapshot — this is how the
    subsystem reaches engines buried inside experiment modules without
    threading a parameter through 18 registry entries.  Previous values
    are restored on exit (pool workers are reused across tasks).
    """
    if checkpoint_dir is None:
        yield
        return
    updates = {
        "REPRO_CHECKPOINT_DIR": checkpoint_dir,
        "REPRO_RESTORE": "1",
    }
    if sim_interval_s is not None:
        updates["REPRO_CHECKPOINT_INTERVAL"] = repr(float(sim_interval_s))
    if wall_interval_s is not None:
        updates["REPRO_CHECKPOINT_WALL_INTERVAL"] = repr(float(wall_interval_s))
    previous = {name: os.environ.get(name) for name in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@contextmanager
def _graceful_worker_signals(enabled: bool):
    """Checkpoint-then-exit-0 on SIGTERM/SIGINT inside a worker.

    Only active in worker processes with checkpointing on (the default
    die-fast behaviour is correct otherwise).  The handler merely sets
    the engine module's global graceful-stop flag; the running engine
    notices it at the next event boundary, writes a final snapshot and
    raises :class:`~repro.errors.SimulationInterrupted`, which
    :func:`run_task` converts into a clean ``os._exit(0)``.
    """
    if not enabled or multiprocessing.parent_process() is None:
        yield
        return
    from repro.engine.datacenter import request_global_graceful_stop

    def _handler(signum, frame):
        request_global_graceful_stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass


def run_task(
    task_id: str,
    exp_id: str,
    scale: float,
    seed: Optional[int],
    attempt: int,
    checkpoint_dir: Optional[str] = None,
    checkpoint_sim_interval_s: Optional[float] = None,
    checkpoint_wall_interval_s: Optional[float] = None,
):
    """Worker entry point: run one experiment module (picklable).

    Applies any environment fault plan first (worker processes only),
    then invokes the registry entry exactly as the serial path would —
    all seeding is explicit, so the rows are attempt-independent.  With
    ``checkpoint_dir`` set, the task's engines snapshot there and a
    retried attempt resumes from the newest snapshot instead of
    recomputing (results stay bit-identical either way).
    """
    fault = _apply_worker_fault(task_id, attempt)
    from repro.experiments import registry

    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    in_worker = multiprocessing.parent_process() is not None
    try:
        with _graceful_worker_signals(checkpoint_dir is not None):
            with _checkpoint_env(
                checkpoint_dir,
                checkpoint_sim_interval_s,
                checkpoint_wall_interval_s,
            ):
                out = registry.get(exp_id)(**kwargs)
    except SimulationInterrupted:
        if in_worker:
            # The final snapshot is on disk; die clean so the supervisor
            # reads this as preemption, not failure ("checkpoint, exit 0").
            os._exit(0)
        raise
    if fault is not None and fault.kind == "corrupt":
        return f"<result corrupted by fault plan (attempt {attempt})>"
    return out


# ------------------------------------------------------------- executor


def _worker_init() -> None:
    """Pool-worker initializer: undo inherited master signal handlers.

    Forked workers inherit whatever handlers :func:`execute_tasks`
    installed in the master; left in place they would swallow the
    SIGTERM that :func:`_terminate_pool` relies on to reap hung workers.
    SIGTERM returns to the default (die; :func:`run_task` re-installs a
    checkpoint-then-exit handler around checkpointing tasks) and SIGINT
    is ignored — a Ctrl-C is the *master's* cue to wind the sweep down
    gracefully, not a reason for every worker to die mid-checkpoint.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard shutdown: cancel queued work and kill worker processes.

    ``shutdown(cancel_futures=True)`` alone cannot reap a *hung* worker
    (there is no public per-worker kill), so the worker processes are
    terminated directly — the executor is dead afterwards and must be
    replaced.
    """
    procs = list(getattr(pool, "_processes", {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for proc in procs:
        try:
            proc.join(5)
        except Exception:  # pragma: no cover - defensive
            pass


class _Sweep:
    """Mutable bookkeeping shared by the serial and parallel paths."""

    def __init__(
        self,
        policy: ExecutionPolicy,
        journal: Optional[SweepJournal],
        on_complete: Optional[Callable[[TaskSpec, ExperimentOutput], None]],
        stop: Optional[dict] = None,
    ) -> None:
        self.policy = policy
        self.journal = journal
        self.on_complete = on_complete
        self.report = SweepReport()
        #: Shared with the signal handlers installed by execute_tasks.
        self._stop = stop if stop is not None else {"flag": False}
        self._deadline = (
            time.monotonic() + policy.max_wall_clock_s
            if policy.max_wall_clock_s is not None
            else None
        )

    def stopping(self) -> bool:
        """True once a signal arrived or the sweep wall budget expired."""
        if self._stop["flag"]:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self._stop["flag"] = True  # latch: the wind-down is one-way
            return True
        return False

    def note_dispatch(self, task: TaskSpec, attempt: int) -> None:
        """Journal a ``restored`` outcome when the attempt will resume.

        Recorded at dispatch time: snapshots live in the task's
        checkpoint directory, so a non-empty directory means this attempt
        picks up mid-simulation instead of starting over.
        """
        directory = self.policy.task_checkpoint_dir(task.task_id)
        if directory is None:
            return
        try:
            has_snapshot = any(Path(directory).rglob("*.ckpt"))
        except OSError:  # pragma: no cover - unreadable dir
            has_snapshot = False
        if has_snapshot:
            self._journal(task, attempt, "restored")
            if task.task_id not in self.report.restored:
                self.report.restored.append(task.task_id)

    def _journal(self, task: TaskSpec, attempt: int, outcome: str, **kw) -> None:
        if self.journal is not None:
            self.journal.record(
                task.task_id, attempt, outcome, cache_key=task.cache_key, **kw
            )

    def succeed(
        self, task: TaskSpec, attempt: int, output: ExperimentOutput, duration: float
    ) -> None:
        self.report.attempts[task.task_id] = attempt + 1
        self.report.outputs[task.task_id] = output
        # Cache (and journal) immediately, in completion order — a later
        # failure or interrupt never throws away a finished result.
        if self.on_complete is not None:
            self.on_complete(task, output)
        self._journal(task, attempt, "ok", duration_s=duration)
        directory = self.policy.task_checkpoint_dir(task.task_id)
        if directory is not None:
            # The task is done and cached: its snapshots are dead weight.
            shutil.rmtree(directory, ignore_errors=True)

    def fail_attempt(
        self,
        task: TaskSpec,
        attempt: int,
        outcome: str,
        exc: BaseException,
        duration: float,
    ) -> bool:
        """Record a failed attempt; True when the task may be retried."""
        self.report.attempts[task.task_id] = attempt + 1
        self._journal(
            task, attempt, outcome, duration_s=duration, error=f"{exc!r}"
        )
        if attempt + 1 <= self.policy.retries:
            return True
        self.report.failures.append(
            TaskFailure(
                task_id=task.task_id,
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=attempt + 1,
                exception=exc,
            )
        )
        return False

    def validated(self, task: TaskSpec, result: object) -> ExperimentOutput:
        if not isinstance(result, ExperimentOutput):
            raise ExperimentError(
                f"worker for {task.task_id} returned a corrupt result "
                f"({type(result).__name__!s}, not ExperimentOutput)"
            )
        return result


def _run_serial(
    sweep: _Sweep, work: List[Tuple[TaskSpec, int]], *, degraded: bool = False
) -> None:
    """Run ``(task, first_attempt)`` pairs in-process, with retries.

    Per-task timeouts are unenforceable here (no portable way to
    interrupt the calling process); worker faults do not fire in-master,
    so this is also the safe landing spot after repeated pool breakage.
    """
    policy = sweep.policy
    for task, first_attempt in work:
        if sweep.stopping():
            sweep.report.interrupted = True
            return
        attempt = first_attempt
        while True:
            delay = policy.backoff_s(task.task_id, attempt)
            if delay > 0:
                time.sleep(delay)
            sweep.note_dispatch(task, attempt)
            t0 = time.monotonic()
            try:
                out = sweep.validated(
                    task,
                    run_task(
                        task.task_id,
                        task.exp_id,
                        task.scale,
                        task.seed,
                        attempt,
                        checkpoint_dir=policy.task_checkpoint_dir(task.task_id),
                        checkpoint_sim_interval_s=policy.checkpoint_sim_interval_s,
                        checkpoint_wall_interval_s=policy.checkpoint_wall_interval_s,
                    ),
                )
            except SimulationInterrupted as exc:
                # Graceful preemption mid-task: the engine already wrote
                # its final snapshot, so the attempt is resumable — not a
                # failure, and not retried now.
                sweep._journal(
                    task,
                    attempt,
                    "interrupted",
                    duration_s=time.monotonic() - t0,
                    error=f"{exc!r}",
                )
                sweep.report.interrupted = True
                return
            except Exception as exc:
                if sweep.fail_attempt(
                    task, attempt, "error", exc, time.monotonic() - t0
                ):
                    attempt += 1
                    continue
                break
            sweep.succeed(task, attempt, out, time.monotonic() - t0)
            break
    if degraded:
        sweep.report.degraded_serial = True


def _run_parallel(sweep: _Sweep, tasks: Sequence[TaskSpec], jobs: Optional[int]) -> None:
    """The fault-tolerant process-pool event loop (see module docstring)."""
    policy = sweep.policy
    workers = jobs if jobs is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers, len(tasks)))

    #: (task, attempt, earliest start in monotonic time).
    backlog: List[Tuple[TaskSpec, int, float]] = [(t, 0, 0.0) for t in tasks]
    #: future -> (task, attempt, deadline, start time).
    pending: Dict[Future, Tuple[TaskSpec, int, float, float]] = {}
    pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
    respawns = 0

    def submit(task: TaskSpec, attempt: int) -> None:
        now = time.monotonic()
        sweep.note_dispatch(task, attempt)
        future = pool.submit(
            run_task,
            task.task_id,
            task.exp_id,
            task.scale,
            task.seed,
            attempt,
            checkpoint_dir=policy.task_checkpoint_dir(task.task_id),
            checkpoint_sim_interval_s=policy.checkpoint_sim_interval_s,
            checkpoint_wall_interval_s=policy.checkpoint_wall_interval_s,
        )
        deadline = (
            now + policy.task_timeout_s
            if policy.task_timeout_s is not None
            else math.inf
        )
        pending[future] = (task, attempt, deadline, now)

    def requeue(task: TaskSpec, attempt: int, *, backoff: bool) -> None:
        delay = policy.backoff_s(task.task_id, attempt) if backoff else 0.0
        backlog.append((task, attempt, time.monotonic() + delay))

    try:
        while backlog or pending:
            if sweep.stopping():
                # Graceful wind-down (signal or wall budget): journal the
                # in-flight work as resumable and terminate the pool —
                # workers with checkpointing on snapshot on their way out.
                for future, (task, attempt, _, t0) in pending.items():
                    sweep._journal(
                        task, attempt, "interrupted",
                        duration_s=time.monotonic() - t0,
                    )
                pending.clear()
                sweep.report.interrupted = True
                _terminate_pool(pool)
                pool = None
                return
            now = time.monotonic()
            due = [item for item in backlog if item[2] <= now]
            backlog = [item for item in backlog if item[2] > now]
            for task, attempt, _ in due:
                submit(task, attempt)

            next_deadline = min(
                (deadline for _, _, deadline, _ in pending.values()),
                default=math.inf,
            )
            next_due = min((nb for _, _, nb in backlog), default=math.inf)
            wake = min(next_deadline, next_due)
            timeout = None if wake is math.inf else max(0.0, wake - now)
            # Cap the wait so signals and the wall budget are noticed
            # promptly even while every worker is deep in a long task.
            timeout = 0.5 if timeout is None else min(timeout, 0.5)

            if not pending:
                # Only backoff waits remain; sleep until the nearest one.
                time.sleep(min(timeout if timeout is not None else 0.01, 0.05))
                continue

            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)

            broken = False
            for future in done:
                task, attempt, _, t0 = pending.pop(future)
                duration = time.monotonic() - t0
                try:
                    out = sweep.validated(task, future.result())
                except BrokenProcessPool:
                    broken = True
                    crash = WorkerCrashError(
                        f"worker pool broke while running {task.task_id} "
                        f"(attempt {attempt})"
                    )
                    if sweep.fail_attempt(task, attempt, "crash", crash, duration):
                        requeue(task, attempt + 1, backoff=True)
                except Exception as exc:
                    if sweep.fail_attempt(task, attempt, "error", exc, duration):
                        requeue(task, attempt + 1, backoff=True)
                else:
                    sweep.succeed(task, attempt, out, duration)

            if broken:
                # Every other in-flight future is doomed too: charge each
                # an attempt (the culprit is unattributable) and either
                # respawn the pool or fall back to serial execution.
                for future, (task, attempt, _, t0) in list(pending.items()):
                    crash = WorkerCrashError(
                        f"worker pool broke with {task.task_id} in flight "
                        f"(attempt {attempt})"
                    )
                    if sweep.fail_attempt(
                        task, attempt, "crash", crash, time.monotonic() - t0
                    ):
                        requeue(task, attempt + 1, backoff=True)
                pending.clear()
                _terminate_pool(pool)
                respawns += 1
                sweep.report.pool_respawns = respawns
                if respawns > policy.max_pool_respawns:
                    remaining = [(t, a) for t, a, _ in backlog]
                    backlog = []
                    pool = None
                    _run_serial(sweep, remaining, degraded=True)
                    return
                pool = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
                continue

            now = time.monotonic()
            overdue = {
                future
                for future, (_, _, deadline, _) in pending.items()
                if now >= deadline
            }
            if overdue:
                # A hung worker cannot be reaped individually: tear the
                # whole pool down, time out the overdue tasks, and
                # re-submit the innocent in-flight ones at no cost.
                lost = list(pending.items())
                pending.clear()
                _terminate_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
                for future, (task, attempt, _, t0) in lost:
                    duration = now - t0
                    if future in overdue:
                        sweep.report.timeouts += 1
                        timeout_exc = TaskTimeoutError(
                            f"{task.task_id} exceeded its "
                            f"{policy.task_timeout_s:.1f}s task timeout "
                            f"(attempt {attempt})"
                        )
                        if sweep.fail_attempt(
                            task, attempt, "timeout", timeout_exc, duration
                        ):
                            requeue(task, attempt + 1, backoff=True)
                    else:
                        sweep._journal(task, attempt, "lost", duration_s=duration)
                        requeue(task, attempt, backoff=False)
    except BaseException:
        # KeyboardInterrupt (or any unexpected error): journal what was
        # in flight and reap the pool so no orphaned workers hold the
        # terminal or keep burning CPU.
        for future, (task, attempt, _, t0) in pending.items():
            sweep._journal(
                task, attempt, "interrupted", duration_s=time.monotonic() - t0
            )
        if pool is not None:
            _terminate_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def execute_tasks(
    tasks: Sequence[TaskSpec],
    *,
    policy: Optional[ExecutionPolicy] = None,
    parallel: bool = False,
    jobs: Optional[int] = None,
    journal: Optional[SweepJournal] = None,
    on_complete: Optional[Callable[[TaskSpec, ExperimentOutput], None]] = None,
) -> SweepReport:
    """Run tasks under an execution policy; never loses a finished result.

    ``on_complete(task, output)`` fires in *completion* order, as soon as
    each task finishes (the runner uses it to persist cache entries
    immediately).  The returned report carries completed outputs, per-task
    attempt counts and a structured failure list; it is the caller's
    choice (``policy.partial``) whether failures raise or are reported.

    While the sweep runs, SIGTERM and SIGINT are handled gracefully (main
    thread only): the sweep stops dispatching, in-flight tasks are
    journaled ``interrupted``, checkpointing workers snapshot on their way
    down, and the report returns with ``interrupted=True``.  A second
    signal abandons politeness and raises :class:`KeyboardInterrupt`.
    """
    sweep = _Sweep(policy or ExecutionPolicy(), journal, on_complete)
    sweep.report.order = [t.task_id for t in tasks]
    if not tasks:
        return sweep.report

    from repro.engine.datacenter import (
        clear_global_graceful_stop,
        request_global_graceful_stop,
    )

    def _handler(signum, frame):
        if sweep._stop["flag"]:
            raise KeyboardInterrupt
        sweep._stop["flag"] = True
        # Reaches a serial in-process engine mid-simulation (the parallel
        # loop notices the flag between waits; workers get SIGTERM from
        # the pool teardown and checkpoint through their own handlers).
        request_global_graceful_stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:  # not the main thread: run unguarded
            pass
    try:
        if parallel:
            _run_parallel(sweep, tasks, jobs)
        else:
            _run_serial(sweep, [(t, 0) for t in tasks])
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass
        clear_global_graceful_stop()
    return sweep.report
