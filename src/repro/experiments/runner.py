"""Parallel experiment sweep runner with an on-disk result cache.

The registry's 18 experiment modules are mutually independent: each is a
pure function of ``(exp_id, scale, seed)`` that internally runs several
full-week simulations.  :func:`run_experiments` exploits that in two ways:

* **Fan-out** — with ``parallel=True`` the experiments are dispatched to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Every worker runs the
  exact same module entry point with the exact same explicit arguments the
  serial path would use (all seeding is explicit — there is no shared RNG
  or other cross-experiment state), so the returned rows are bit-identical
  to a serial sweep; only wall-clock time changes.  Results are reordered
  to the input order regardless of completion order.

* **Caching** — with ``cache_dir`` set, each experiment's
  :class:`~repro.experiments.common.ExperimentOutput` is pickled under a
  key of ``sha256(version fingerprint, exp_id, scale, seed)``.  The
  version fingerprint folds in the package version and
  :data:`RESULT_VERSION`, so bumping either invalidates every stale entry;
  identical re-runs are served from disk without simulating.  Writes are
  atomic (temp file + rename) so a killed sweep never leaves a torn entry.

The module is deliberately dependency-free (stdlib only) and every worker
entry point is a top-level function, keeping everything picklable under
both fork and spawn start methods.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentOutput

__all__ = ["RESULT_VERSION", "cache_key", "comparable_rows", "run_experiments"]

#: Bump when engine/experiment semantics change in a way that invalidates
#: previously cached :class:`ExperimentOutput` pickles.
RESULT_VERSION = 1


def _version_fingerprint() -> str:
    from repro import __version__

    return f"{__version__}:{RESULT_VERSION}"


def cache_key(exp_id: str, scale: float, seed: Optional[int]) -> str:
    """Stable cache key for one experiment invocation.

    ``seed=None`` (module default) and an explicit seed equal to the
    default hash differently on purpose: the two calls take different
    code paths in the experiment modules and are only *expected* to agree.
    """
    raw = repr((_version_fingerprint(), exp_id, float(scale), seed))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def comparable_rows(output: ExperimentOutput) -> List[dict]:
    """The output's rows with measured wall-clock fields removed.

    Simulation rows are deterministic; the one exception is measured wall
    time (``wall_clock_s`` and friends), which differs between *any* two
    runs, serial or not.  Serial/parallel equivalence is asserted on this
    view.
    """
    return [
        {k: v for k, v in row.items() if "wall" not in k} for row in output.rows
    ]


def _run_one(exp_id: str, scale: float, seed: Optional[int]) -> ExperimentOutput:
    """Worker entry point: run one experiment module (picklable)."""
    from repro.experiments import registry

    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return registry.get(exp_id)(**kwargs)


def _cache_load(path: Path) -> Optional[ExperimentOutput]:
    try:
        with open(path, "rb") as fh:
            out = pickle.load(fh)
    # A torn or overwritten entry is indistinguishable from an arbitrary
    # byte stream, and pickle surfaces corruption through many exception
    # types (UnpicklingError, ValueError, EOFError, ...) depending on
    # which opcode the garbage happens to hit — any failure means "miss".
    except Exception:
        return None
    return out if isinstance(out, ExperimentOutput) else None


def _cache_store(path: Path, output: ExperimentOutput) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(output, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - cache is best-effort
        try:
            os.unlink(tmp)
        except OSError:
            pass


def run_experiments(
    exp_ids: Optional[Sequence[str]] = None,
    *,
    scale: float = 1.0,
    seed: Optional[int] = None,
    parallel: bool = False,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[ExperimentOutput]:
    """Run a set of experiments, optionally in parallel and/or cached.

    Parameters
    ----------
    exp_ids:
        Experiment ids to run (default: the whole registry, in
        presentation order).  Output order always matches input order.
    scale:
        Fraction of the paper's week each experiment simulates.
    seed:
        Explicit seed forwarded to every experiment; ``None`` keeps each
        module's default.
    parallel:
        Fan experiments out over a process pool.  Rows are identical to a
        serial run — workers receive the same explicit arguments.
    jobs:
        Worker count (default: ``os.cpu_count()``); only with ``parallel``.
    cache_dir:
        Directory for the pickle cache; ``None`` disables caching.
    """
    from repro.experiments import registry

    ids = list(exp_ids) if exp_ids is not None else registry.list_ids()
    for exp_id in ids:
        registry.get(exp_id)  # validate early, before spawning workers

    cache = Path(cache_dir) if cache_dir is not None else None
    outputs: List[Optional[ExperimentOutput]] = [None] * len(ids)
    misses: List[int] = []
    for i, exp_id in enumerate(ids):
        if cache is not None:
            hit = _cache_load(cache / f"{cache_key(exp_id, scale, seed)}.pkl")
            if hit is not None:
                outputs[i] = hit
                continue
        misses.append(i)

    if misses:
        if parallel:
            workers = jobs if jobs is not None else (os.cpu_count() or 1)
            workers = max(1, min(workers, len(misses)))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    i: pool.submit(_run_one, ids[i], scale, seed) for i in misses
                }
                for i, future in futures.items():
                    outputs[i] = future.result()
        else:
            for i in misses:
                outputs[i] = _run_one(ids[i], scale, seed)
        if cache is not None:
            for i in misses:
                _cache_store(
                    cache / f"{cache_key(ids[i], scale, seed)}.pkl", outputs[i]
                )

    return list(outputs)  # type: ignore[arg-type]
