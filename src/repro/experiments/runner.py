"""Parallel experiment sweep runner with an on-disk result cache.

The registry's 18 experiment modules are mutually independent: each is a
pure function of ``(exp_id, scale, seed)`` that internally runs several
full-week simulations.  :func:`run_experiments` exploits that in three
ways:

* **Fan-out** — with ``parallel=True`` the experiments are dispatched to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Every worker runs the
  exact same module entry point with the exact same explicit arguments the
  serial path would use (all seeding is explicit — there is no shared RNG
  or other cross-experiment state), so the returned rows are bit-identical
  to a serial sweep; only wall-clock time changes.  Results are reordered
  to the input order regardless of completion order.

* **Caching** — with ``cache_dir`` set, each experiment's
  :class:`~repro.experiments.common.ExperimentOutput` is pickled under a
  key of ``sha256(version fingerprint, exp_id, scale, seed)``.  The
  version fingerprint folds in the package version and
  :data:`RESULT_VERSION`, so bumping either invalidates every stale entry;
  identical re-runs are served from disk without simulating.  Writes are
  atomic (temp file + rename) so a killed sweep never leaves a torn entry,
  they happen *as each task completes* (a failure elsewhere in the sweep
  never throws away a finished result), and a corrupt or truncated entry
  found mid-sweep is quarantined (renamed aside) and recomputed.

* **Fault tolerance** — execution is delegated to
  :mod:`repro.experiments.resilience`: per-task retries with
  deterministic backoff, per-task wall-clock timeouts, broken-pool
  recovery with serial degradation, a JSONL sweep journal enabling
  ``resume=True``, and a ``partial`` mode returning a
  :class:`~repro.experiments.resilience.SweepReport` (completed outputs
  plus a structured failure report) instead of raising.

The module is deliberately dependency-free (stdlib only) and every worker
entry point is a top-level function, keeping everything picklable under
both fork and spawn start methods.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Union

import hashlib

from repro.errors import ConfigurationError, SimulationInterrupted
from repro.experiments.common import ExperimentOutput
from repro.experiments.resilience import (
    ExecutionPolicy,
    ReproFaultPlan,
    SweepJournal,
    SweepReport,
    TaskSpec,
    execute_tasks,
)

__all__ = [
    "RESULT_VERSION",
    "JOURNAL_NAME",
    "cache_key",
    "comparable_rows",
    "run_experiments",
]

#: Bump when engine/experiment semantics change in a way that invalidates
#: previously cached :class:`ExperimentOutput` pickles.  2: results grew
#: the strict-invariant diagnostic fields.  3: results grew the
#: persistent-matrix ``rescore_stats`` field.  4: results grew the
#: checkpoint/restore counters.
RESULT_VERSION = 4

#: Default sweep-journal filename inside ``cache_dir``.
JOURNAL_NAME = "sweep-journal.jsonl"


def _version_fingerprint() -> str:
    from repro import __version__

    return f"{__version__}:{RESULT_VERSION}"


def cache_key(exp_id: str, scale: float, seed: Optional[int]) -> str:
    """Stable cache key for one experiment invocation.

    ``seed=None`` (module default) and an explicit seed equal to the
    default hash differently on purpose: the two calls take different
    code paths in the experiment modules and are only *expected* to agree.
    """
    raw = repr((_version_fingerprint(), exp_id, float(scale), seed))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def comparable_rows(output: ExperimentOutput) -> List[dict]:
    """The output's rows with measured wall-clock fields removed.

    Simulation rows are deterministic; the one exception is measured wall
    time (``wall_clock_s`` and friends), which differs between *any* two
    runs, serial or not.  Serial/parallel equivalence is asserted on this
    view.
    """
    return [
        {k: v for k, v in row.items() if "wall" not in k} for row in output.rows
    ]


def _run_one(exp_id: str, scale: float, seed: Optional[int]) -> ExperimentOutput:
    """Worker entry point: run one experiment module (picklable).

    Kept for backward compatibility; the resilient executor uses
    :func:`repro.experiments.resilience.run_task` (which also threads the
    attempt number through for fault injection).
    """
    from repro.experiments import registry

    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return registry.get(exp_id)(**kwargs)


def _cache_load(path: Path) -> Optional[ExperimentOutput]:
    """Load one cache entry; quarantine it (rename aside) when corrupt.

    A torn or overwritten entry is indistinguishable from an arbitrary
    byte stream, and pickle surfaces corruption through many exception
    types (UnpicklingError, ValueError, EOFError, ...) depending on
    which opcode the garbage happens to hit — any failure means "miss".
    The bad bytes are preserved next to the entry (``*.quarantined``)
    for post-mortem instead of being silently overwritten.
    """
    try:
        with open(path, "rb") as fh:
            out = pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception:
        _quarantine(path)
        return None
    if not isinstance(out, ExperimentOutput):
        _quarantine(path)
        return None
    return out


def _quarantine(path: Path) -> None:
    try:
        os.replace(path, path.with_name(path.name + ".quarantined"))
    except OSError:  # pragma: no cover - cache is best-effort
        pass


def _cache_store(path: Path, output: ExperimentOutput) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(output, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - cache is best-effort
        try:
            os.unlink(tmp)
        except OSError:
            pass


def run_experiments(
    exp_ids: Optional[Sequence[str]] = None,
    *,
    scale: float = 1.0,
    seed: Optional[int] = None,
    parallel: bool = False,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    execution: Optional[ExecutionPolicy] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
    fault_plan: Optional[ReproFaultPlan] = None,
) -> Union[List[ExperimentOutput], SweepReport]:
    """Run a set of experiments, optionally in parallel and/or cached.

    Parameters
    ----------
    exp_ids:
        Experiment ids to run (default: the whole registry, in
        presentation order).  Output order always matches input order.
    scale:
        Fraction of the paper's week each experiment simulates.
    seed:
        Explicit seed forwarded to every experiment; ``None`` keeps each
        module's default.
    parallel:
        Fan experiments out over a process pool.  Rows are identical to a
        serial run — workers receive the same explicit arguments.
    jobs:
        Worker count (default: ``os.cpu_count()``); only with ``parallel``.
    cache_dir:
        Directory for the pickle cache; ``None`` disables caching.
        Entries are written as soon as each experiment finishes.
    execution:
        Fault-tolerance policy (retries, backoff, per-task timeout,
        pool-respawn budget, ``partial`` mode).  The default policy
        preserves the historical fail-fast semantics, except that task
        failures now raise :class:`~repro.errors.ExperimentError`
        subclasses (chaining the original exception).
    resume:
        Skip every task an earlier journal run completed, serving its
        output from the cache (requires ``cache_dir``).  A missing or
        corrupt cache entry falls back to recomputing that task.
    journal_path:
        Where to append the JSONL sweep journal (default:
        ``<cache_dir>/sweep-journal.jsonl`` when caching is on).
    fault_plan:
        Deterministic fault injection, exported to workers through the
        environment for the duration of the sweep (testing/CI hook).

    Returns
    -------
    The outputs in input order, or — when ``execution.partial`` is true —
    a :class:`~repro.experiments.resilience.SweepReport` carrying the
    completed outputs alongside the structured failure report.
    """
    from repro.experiments import registry

    ids = list(exp_ids) if exp_ids is not None else registry.list_ids()
    for exp_id in ids:
        registry.get(exp_id)  # validate early, before spawning workers

    policy = execution or ExecutionPolicy()
    cache = Path(cache_dir) if cache_dir is not None else None
    if resume and cache is None:
        raise ConfigurationError("resume=True requires cache_dir")

    journal_file: Optional[Path] = None
    if journal_path is not None:
        journal_file = Path(journal_path)
    elif cache is not None:
        journal_file = cache / JOURNAL_NAME

    resumable = (
        SweepJournal.completed_tasks(journal_file)
        if resume and journal_file is not None
        else {}
    )

    journal = SweepJournal(journal_file) if journal_file is not None else None
    report = SweepReport()
    try:
        outputs: List[Optional[ExperimentOutput]] = [None] * len(ids)
        specs: List[TaskSpec] = []
        for i, exp_id in enumerate(ids):
            key = cache_key(exp_id, scale, seed)
            if cache is not None:
                hit = _cache_load(cache / f"{key}.pkl")
                if hit is not None:
                    outputs[i] = hit
                    outcome = "resumed" if exp_id in resumable else "cached"
                    if journal is not None:
                        journal.record(exp_id, 0, outcome, cache_key=key)
                    (report.resumed if exp_id in resumable
                     else report.cached).append(exp_id)
                    continue
            specs.append(
                TaskSpec(
                    task_id=exp_id,
                    exp_id=exp_id,
                    scale=scale,
                    seed=seed,
                    cache_key=key,
                )
            )

        def store(task: TaskSpec, output: ExperimentOutput) -> None:
            if cache is not None:
                _cache_store(cache / f"{task.cache_key}.pkl", output)

        if specs:
            if fault_plan is not None:
                with fault_plan.installed():
                    run = execute_tasks(
                        specs,
                        policy=policy,
                        parallel=parallel,
                        jobs=jobs,
                        journal=journal,
                        on_complete=store,
                    )
            else:
                run = execute_tasks(
                    specs,
                    policy=policy,
                    parallel=parallel,
                    jobs=jobs,
                    journal=journal,
                    on_complete=store,
                )
            report.outputs.update(run.outputs)
            report.failures.extend(run.failures)
            report.attempts.update(run.attempts)
            report.pool_respawns = run.pool_respawns
            report.timeouts = run.timeouts
            report.degraded_serial = run.degraded_serial
            report.restored = list(run.restored)
            report.interrupted = run.interrupted
    finally:
        if journal is not None:
            journal.close()

    report.order = list(ids)
    for i, exp_id in enumerate(ids):
        if outputs[i] is None:
            outputs[i] = report.outputs.get(exp_id)
        else:
            report.outputs[exp_id] = outputs[i]

    if policy.partial:
        return report
    if report.interrupted:
        # The sweep wound down gracefully (signal / wall budget); the
        # journal and any engine snapshots make it resumable.  Without
        # ``partial`` there is no channel for an incomplete output list,
        # so surface the preemption as the typed, catchable exception.
        done = sum(1 for out in outputs if out is not None)
        raise SimulationInterrupted(
            f"sweep interrupted with {done}/{len(ids)} experiment(s) "
            f"complete; re-run with resume=True to continue"
        )
    report.raise_if_failed()
    return list(outputs)  # type: ignore[arg-type]
