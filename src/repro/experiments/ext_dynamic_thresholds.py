"""Extension — dynamic λ thresholds (§V-A / §VI future work).

"A next step would be to dynamically adjust these thresholds, which is
part of our future work."  Built here: the adaptive controller tightens
λmin whenever a VM is projected to miss its deadline and relaxes it after
quiet periods.  Compared against the paper's two static settings on the
same workload: the adaptive run should land near the aggressive static
setting's energy while retaining the conservative one's SLA posture.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.datacenter import DatacenterSimulation
from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_cluster,
    paper_trace,
)
from repro.scheduling.adaptive import AdaptivePowerManager
from repro.scheduling.power_manager import PowerManagerConfig
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Static λ 30-90 and 50-90 vs the adaptive controller."""
    trace = paper_trace(scale=scale, seed=seed)
    cluster = paper_cluster()

    def simulate_with(pm, name):
        engine = DatacenterSimulation(
            cluster=cluster,
            policy=ScoreBasedPolicy(ScoreConfig.sb(), name=name),
            trace=trace.fresh(),
            power_manager=pm,
            config=EngineConfig(seed=seed),
        )
        return engine, engine.run()

    from repro.scheduling.power_manager import PowerManager

    _, conservative = simulate_with(
        PowerManager(lambda_config(0.30, 0.90)), "SB/static30"
    )
    _, aggressive = simulate_with(
        PowerManager(lambda_config(0.50, 0.90)), "SB/static50"
    )
    adaptive_pm = AdaptivePowerManager(
        PowerManagerConfig(lambda_min=0.30, lambda_max=0.90),
        lambda_min_floor=0.20,
        lambda_min_ceil=0.60,
    )
    _, adaptive = simulate_with(adaptive_pm, "SB/adaptive")

    results = [conservative, aggressive, adaptive]
    rows = [
        {
            "config": r.policy,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
        }
        for r in results
    ]
    final_lambda = adaptive_pm.config.lambda_min
    text = results_table(results) + (
        f"\nadaptive controller made {len(adaptive_pm.adjustments)} "
        f"adjustments; final λmin = {final_lambda * 100:.0f} % "
        f"(started at 30 %, bounds 20-60 %)"
    )
    return ExperimentOutput(
        exp_id="ext_dynamic_thresholds",
        title="Dynamic λ thresholds vs the paper's static settings",
        rows=rows,
        text=text,
        paper_reference=(
            "§V-A: 'A next step would be to dynamically adjust these "
            "thresholds, which is part of our future work.' — no numbers "
            "published."
        ),
    )
