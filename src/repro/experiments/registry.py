"""Registry mapping experiment ids to their runner modules."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    ablation_power,
    ablation_seeds,
    ablation_solver,
    ext_chaos,
    ext_checkpoint_cost,
    ext_dynamic_thresholds,
    ext_economics,
    ext_federation,
    ext_heuristics,
    ext_reliability,
    ext_sla,
    ext_workloads,
    figure1_validation,
    figures2_3_thresholds,
    table1_power,
    table2_static,
    table3_overheads,
    table4_migration,
    table5_consolidation,
)
from repro.experiments.common import ExperimentOutput

__all__ = ["get", "list_ids", "all_experiments", "REGISTRY"]

REGISTRY: Dict[str, Callable[..., ExperimentOutput]] = {
    "table1": table1_power.run,
    "figure1": figure1_validation.run,
    "figures2_3": figures2_3_thresholds.run,
    "table2": table2_static.run,
    "table3": table3_overheads.run,
    "table4": table4_migration.run,
    "table5": table5_consolidation.run,
    "ext_reliability": ext_reliability.run,
    "ext_chaos": ext_chaos.run,
    "ext_sla": ext_sla.run,
    "ext_heuristics": ext_heuristics.run,
    "ext_checkpoint_cost": ext_checkpoint_cost.run,
    "ext_economics": ext_economics.run,
    "ext_federation": ext_federation.run,
    "ext_workloads": ext_workloads.run,
    "ext_dynamic_thresholds": ext_dynamic_thresholds.run,
    "ablation_power": ablation_power.run,
    "ablation_solver": ablation_solver.run,
    "ablation_seeds": ablation_seeds.run,
}


def get(exp_id: str) -> Callable[..., ExperimentOutput]:
    """Runner for one experiment id (raises on unknown ids)."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {known}"
        ) from None


def list_ids() -> List[str]:
    """All experiment ids in presentation order."""
    return list(REGISTRY)


def all_experiments(
    scale: float = 1.0,
    seed: int | None = None,
    *,
    parallel: bool = False,
    jobs: int | None = None,
    cache_dir: str | None = None,
    execution=None,
    resume: bool = False,
) -> List[ExperimentOutput]:
    """Run the whole evaluation (pass ``scale < 1`` for a quick pass).

    ``parallel=True`` fans the experiments out over a process pool (see
    :mod:`repro.experiments.runner`); rows are identical to a serial run.
    ``cache_dir`` re-serves identical invocations from an on-disk cache.
    ``execution`` (an :class:`~repro.experiments.resilience.ExecutionPolicy`)
    adds retries/timeouts/partial-results; ``resume`` skips experiments a
    previous journal run completed.
    """
    # Imported lazily: the runner imports this registry back.
    from repro.experiments.runner import run_experiments

    return run_experiments(
        scale=scale,
        seed=seed,
        parallel=parallel,
        jobs=jobs,
        cache_dir=cache_dir,
        execution=execution,
        resume=resume,
    )
