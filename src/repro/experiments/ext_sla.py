"""Extension — dynamic SLA enforcement (the paper's §III-A-5 mechanism).

Also left unevaluated by the paper.  We create SLA pressure by running a
*small, aggressively power-managed* datacenter (few spares, late boots)
so that operation races and boot waits push running VMs toward their
deadlines, then compare the full SB policy with P_SLA + requirement
inflation on versus off.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_cluster,
    paper_trace,
    run_policy,
)
from repro.scheduling.power_manager import PowerManagerConfig
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Compare SB with and without dynamic SLA enforcement under pressure."""
    trace = paper_trace(scale=scale, seed=seed)
    cluster = paper_cluster(40)  # tight datacenter: contention is real
    pm = PowerManagerConfig(lambda_min=0.60, lambda_max=0.95, spare_margin=0.05)
    engine = EngineConfig(seed=seed)
    runs = [
        ScoreBasedPolicy(ScoreConfig.sb(), name="SB"),
        ScoreBasedPolicy(
            ScoreConfig.sb(enable_sla=True, th_sla=0.25), name="SB+SLA"
        ),
    ]
    results = [
        run_policy(p, trace, cluster=cluster, pm_config=pm,
                   engine_config=engine, seed=seed)
        for p in runs
    ]
    rows = [
        {
            "policy": r.policy,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
            "power_kwh": r.energy_kwh,
            "sla_inflations": r.sla_violations,
            "migrations": r.migrations,
        }
        for r in results
    ]
    extra = "\n".join(
        f"{r.policy:>8}: requirement inflations {r.sla_violations}, "
        f"migrations {r.migrations}"
        for r in results
    )
    return ExperimentOutput(
        exp_id="ext_sla",
        title="Dynamic SLA enforcement under capacity pressure",
        text=results_table(results) + "\n" + extra,
        rows=rows,
        paper_reference=(
            "No published numbers — §VI future work; expectation from "
            "§III-A-5: detecting a violation inflates the VM's requirement "
            "so the next round relocates it to a host with headroom."
        ),
    )
