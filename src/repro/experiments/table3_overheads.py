"""Table III — impact of virtualization overheads (still no migration).

SB0 vs SB1 (+ creation overhead P_virt) vs SB2 (+ concurrency P_conc),
plus SB2 with the more aggressive λ 40/90 — the configuration the paper
credits with ">12 % reduction with regard to Backfilling at the same SLA
fulfilment".
"""

from __future__ import annotations

from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_trace,
    run_policy,
)
from repro.scheduling.baselines import BackfillingPolicy
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]

PAPER = """\
      λ      Work/ON      CPU (h)  Pwr (kWh)  S (%)  delay (%)
SB0   30-90  9.85 / 22.4  6055.3   1016.3     98.2   10.4
SB1   30-90  10.2 / 22.2  6055.3   1006.7     97.9   10.7
SB2   30-90  10.2 / 23.0  6068.5   1038.5     99.2    8.8
SB2   40-90  10.4 / 19.0  6055.1    880.5     98.1   10.2"""


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate Table III (BF included as the reduction baseline)."""
    trace = paper_trace(scale=scale, seed=seed)
    runs = [
        (BackfillingPolicy(), lambda_config()),
        (ScoreBasedPolicy(ScoreConfig.sb0()), lambda_config()),
        (ScoreBasedPolicy(ScoreConfig.sb1()), lambda_config()),
        (ScoreBasedPolicy(ScoreConfig.sb2()), lambda_config()),
        (ScoreBasedPolicy(ScoreConfig.sb2()), lambda_config(0.40, 0.90)),
    ]
    results = [run_policy(p, trace, pm_config=pm, seed=seed) for p, pm in runs]
    bf_kwh = results[0].energy_kwh
    reduction = 100.0 * (1.0 - results[-1].energy_kwh / bf_kwh)
    rows = [
        {
            "policy": r.policy,
            "lambdas": r.lambdas,
            "work": r.avg_working,
            "on": r.avg_online,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
        }
        for r in results
    ]
    text = results_table(results) + (
        f"\nSB2 @ 40-90 vs BF @ 30-90: {reduction:.1f} % less energy "
        f"(paper: >12 %)"
    )
    return ExperimentOutput(
        exp_id="table3",
        title="Score-based policies without migration (overhead terms)",
        text=text,
        rows=rows,
        paper_reference=PAPER,
    )
