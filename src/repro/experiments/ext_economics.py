"""Extension — economical decision making (§V-E / §VI future work).

Two questions the paper defers:

1. **Where does the money go?**  The same workload under BF vs SB,
   accounted with a realistic tariff — how much of the energy saving
   survives as profit once late-job revenue forfeits are charged.
2. **Can the knobs set themselves?**  The
   :class:`~repro.economics.optimizer.EconomicOptimizer` searches
   (λmin, λmax) × (C_e, C_f) for the profit maximum — "an automatic
   setting according with economical parameters".
"""

from __future__ import annotations

from repro.economics.accounting import assess
from repro.economics.optimizer import EconomicOptimizer
from repro.economics.pricing import PricingModel, TimeOfUseTariff
from repro.engine.config import EngineConfig
from repro.engine.datacenter import DatacenterSimulation
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_cluster,
    paper_trace,
)
from repro.scheduling.baselines import BackfillingPolicy
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Account BF vs SB, then let the optimizer pick the configuration."""
    trace = paper_trace(scale=scale, seed=seed)
    cluster = paper_cluster()
    pricing = PricingModel(
        eur_per_core_hour=0.05,
        energy=TimeOfUseTariff(),
    )
    engine_cfg = EngineConfig(seed=seed, record_power_series=True)

    lines = []
    rows = []
    for policy in (BackfillingPolicy(), ScoreBasedPolicy(ScoreConfig.sb())):
        engine = DatacenterSimulation(
            cluster=cluster,
            policy=policy,
            trace=trace.fresh(),
            pm_config=lambda_config(),
            config=engine_cfg,
        )
        statement = assess(engine, pricing)
        lines.append(f"{policy.name:>4}: {statement}")
        rows.append(
            {
                "policy": policy.name,
                "revenue_eur": statement.revenue_eur,
                "energy_cost_eur": statement.energy_cost_eur,
                "profit_eur": statement.profit_eur,
            }
        )

    optimizer = EconomicOptimizer(
        cluster, trace, pricing, EngineConfig(seed=seed)
    )
    outcome = optimizer.search(
        lambda_mins=(0.30, 0.50),
        lambda_maxs=(0.90,),
        cost_pairs=((0.0, 40.0), (20.0, 40.0)),
    )
    lines.append("")
    lines.append("automatic configuration search (profit-ranked):")
    lines.append(outcome.table())
    best = outcome.best
    lines.append(f"chosen automatically: {best.label()}")
    rows.append(
        {
            "policy": "optimizer-best",
            "config": best.label(),
            "profit_eur": best.profit_eur,
        }
    )
    return ExperimentOutput(
        exp_id="ext_economics",
        title="Economical decision making: P&L and automatic tuning",
        rows=rows,
        text="\n".join(lines),
        paper_reference=(
            "§V-E / §VI: 'future work will include an automatic setting "
            "according with economical parameters' — no numbers published."
        ),
    )
