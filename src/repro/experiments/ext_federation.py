"""Extension — cost- and carbon-aware load distribution across sites.

§II [20] (Le et al., HotPower'09) distributes load across datacenters "
according to its power consumption and its source"; the paper notes its
framework "can be applied to this model in order to give it a more
detailed and precise vision".  This experiment is that application: three
sites (EU coal-ish grid, US mixed grid, solar-heavy sunbelt grid) in
different timezones with different tariffs, each running the full
score-based scheduler, compared under three front-end dispatchers.
"""

from __future__ import annotations

from repro.economics.pricing import TimeOfUseTariff
from repro.engine.config import EngineConfig
from repro.experiments.common import DEFAULT_SEED, ExperimentOutput, paper_cluster, paper_trace
from repro.federation import (
    CarbonModel,
    CheapestEnergyDispatcher,
    Federation,
    GreenestDispatcher,
    RoundRobinDispatcher,
    SiteSpec,
)

__all__ = ["run", "demo_sites"]


def demo_sites(seed: int = DEFAULT_SEED, n_hosts: int = 40):
    """Three plausible sites with distinct price/carbon geographies."""
    return [
        SiteSpec(
            name="eu-north",
            cluster=paper_cluster(n_hosts),
            tz_offset_h=1.0,
            tariff=TimeOfUseTariff(offpeak_eur_per_kwh=0.10,
                                   peak_eur_per_kwh=0.22),
            carbon=CarbonModel(base_g_per_kwh=350.0, solar_fraction=0.1),
            engine_config=EngineConfig(seed=seed),
        ),
        SiteSpec(
            name="us-east",
            cluster=paper_cluster(n_hosts),
            tz_offset_h=-5.0,
            tariff=TimeOfUseTariff(offpeak_eur_per_kwh=0.07,
                                   peak_eur_per_kwh=0.14),
            carbon=CarbonModel(base_g_per_kwh=450.0, solar_fraction=0.05),
            engine_config=EngineConfig(seed=seed + 1),
        ),
        SiteSpec(
            name="sunbelt",
            cluster=paper_cluster(n_hosts),
            tz_offset_h=-8.0,
            tariff=TimeOfUseTariff(offpeak_eur_per_kwh=0.09,
                                   peak_eur_per_kwh=0.18),
            carbon=CarbonModel(base_g_per_kwh=300.0, solar_fraction=0.6),
            engine_config=EngineConfig(seed=seed + 2),
        ),
    ]


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Compare the three dispatchers on the same workload and sites."""
    trace = paper_trace(scale=scale, seed=seed)
    dispatchers = [
        RoundRobinDispatcher(),
        CheapestEnergyDispatcher(),
        GreenestDispatcher(),
    ]
    rows = []
    header = f"{'dispatcher':<16} {'kWh':>8} {'cost €':>8} {'CO2 kg':>8} {'S (%)':>7}"
    lines = [header, "-" * len(header)]
    for dispatcher in dispatchers:
        federation = Federation(demo_sites(seed=seed), dispatcher)
        outcome = federation.run(trace)
        row = outcome.table_row()
        rows.append(
            {
                "dispatcher": outcome.dispatcher,
                "energy_kwh": outcome.total_energy_kwh,
                "cost_eur": outcome.total_cost_eur,
                "carbon_kg": outcome.total_carbon_kg,
                "satisfaction": outcome.satisfaction,
                "split": row["split"],
            }
        )
        lines.append(
            f"{outcome.dispatcher:<16} {outcome.total_energy_kwh:>8.1f} "
            f"{outcome.total_cost_eur:>8.2f} {outcome.total_carbon_kg:>8.1f} "
            f"{outcome.satisfaction:>7.1f}"
        )
        lines.append(f"    split: {row['split']}")
    return ExperimentOutput(
        exp_id="ext_federation",
        title="Cost/carbon-aware load distribution across datacenters",
        rows=rows,
        text="\n".join(lines),
        paper_reference=(
            "No published numbers — §II [20] model; expectation: "
            "cheapest-energy routing cuts the bill, greenest routing cuts "
            "emissions, both at near-equal total energy and SLA."
        ),
    )
