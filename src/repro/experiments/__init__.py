"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(scale=1.0, seed=DEFAULT_SEED)``
returning an :class:`~repro.experiments.common.ExperimentOutput` whose
text block prints the same rows/series the paper reports, next to the
paper's published numbers.  ``scale`` shrinks the simulated horizon (1.0 =
the paper's full week) so tests and benchmarks can exercise the identical
code path quickly.

Use :func:`repro.experiments.registry.get` / ``python -m repro experiment
<id>`` to run one, or ``all_experiments()`` for the whole evaluation.
"""

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_cluster,
    paper_trace,
    run_policy,
)
from repro.experiments.registry import all_experiments, get, list_ids

__all__ = [
    "DEFAULT_SEED",
    "ExperimentOutput",
    "paper_cluster",
    "paper_trace",
    "run_policy",
    "all_experiments",
    "get",
    "list_ids",
]
