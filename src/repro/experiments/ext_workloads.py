"""Extension — does the saving survive other workload families?

The paper evaluates on one Grid5000 week.  A natural referee question:
is the score-based policy's advantage an artifact of that trace's shape?
This experiment re-runs the BF vs SB @ 40-90 comparison on three
families:

* the calibrated Grid5000-like week (the paper's),
* a Lublin-Feitelson supercomputer day (power-of-two sizes, hyper-gamma
  runtimes, different diurnal shape),
* a heavy-tailed (Pareto) day — a few whale jobs carry most of the mass,
  stressing exactly the migration pricing (whales have long remaining
  times, so P_m lets them move; mayflies stay pinned).
"""

from __future__ import annotations

from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_trace,
    run_policy,
)
from repro.scheduling.baselines import BackfillingPolicy
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy
from repro.units import DAY
from repro.workload.models import HeavyTailModel, LublinFeitelsonModel

__all__ = ["run"]


def run(scale: float = 1.0 / 7.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run the comparison on each family (scale scales each horizon)."""
    horizon = DAY * 7 * scale
    families = [
        ("grid5000", paper_trace(scale=scale, seed=seed)),
        (
            "lublin",
            LublinFeitelsonModel(
                horizon_s=horizon, jobs_per_day=900.0
            ).generate(seed=seed),
        ),
        (
            "heavy-tail",
            HeavyTailModel(
                horizon_s=horizon, jobs_per_hour=35.0
            ).generate(seed=seed),
        ),
    ]
    rows = []
    results = []
    for name, trace in families:
        bf = run_policy(BackfillingPolicy(), trace,
                        pm_config=lambda_config(), seed=seed)
        sb = run_policy(
            ScoreBasedPolicy(ScoreConfig.sb(), name=f"SB@40-90/{name}"),
            trace, pm_config=lambda_config(0.40, 0.90), seed=seed,
        )
        saving = 100.0 * (1.0 - sb.energy_kwh / bf.energy_kwh)
        rows.append(
            {
                "family": name,
                "n_jobs": len(trace),
                "bf_kwh": bf.energy_kwh,
                "sb_kwh": sb.energy_kwh,
                "saving_pct": saving,
                "bf_s": bf.satisfaction,
                "sb_s": sb.satisfaction,
            }
        )
        results.extend([bf, sb])
    lines = [
        f"{'family':<12} {'jobs':>6} {'BF kWh':>8} {'SB kWh':>8} "
        f"{'saving %':>9} {'S BF/SB':>13}"
    ]
    for r in rows:
        lines.append(
            f"{r['family']:<12} {r['n_jobs']:>6} {r['bf_kwh']:>8.1f} "
            f"{r['sb_kwh']:>8.1f} {r['saving_pct']:>9.1f} "
            f"{r['bf_s']:>6.1f}/{r['sb_s']:.1f}"
        )
    return ExperimentOutput(
        exp_id="ext_workloads",
        title="Robustness of the saving across workload families",
        rows=rows,
        text="\n".join(lines),
        paper_reference=(
            "The paper evaluates one Grid5000 week; no cross-family "
            "robustness numbers are published."
        ),
    )
