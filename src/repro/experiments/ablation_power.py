"""Ablations — where do the energy savings actually come from?

Three runs of the full SB policy on the same workload:

* **no power manager** (every node always on) — the consolidation-only
  baseline; the gap to the next row is what turning machines off buys,
  the paper's ">200 W per machine" headline;
* **Table I hosts** (the paper's energy-proportional-ish machines);
* **constant-power hosts** — §IV-A's cautionary tale: "machines where
  the power usage does not change with the load ... should be avoided";
  with them, only the on/off mechanism saves anything.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.power import ConstantPowerModel
from repro.cluster.spec import ClusterSpec
from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_cluster,
    paper_trace,
    run_policy,
)
from repro.scheduling.power_manager import PowerManagerConfig
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]


def _constant_cluster() -> ClusterSpec:
    model = ConstantPowerModel(watts=270.0, capacity=400.0)
    return ClusterSpec(
        replace(spec, power_model=model) for spec in paper_cluster()
    )


def run(scale: float = 0.25, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run the three ablation rows."""
    trace = paper_trace(scale=scale, seed=seed)
    # "Always on": λmin=0 is illegal by construction; emulate with a huge
    # minexec so the controller can never shut anything down.
    always_on = PowerManagerConfig(
        lambda_min=0.01, lambda_max=0.99, minexec=100
    )
    runs = [
        ("SB/always-on", paper_cluster(), always_on),
        ("SB/table-I", paper_cluster(), lambda_config()),
        ("SB/constant-W", _constant_cluster(), lambda_config()),
    ]
    results = []
    for name, cluster, pm in runs:
        policy = ScoreBasedPolicy(ScoreConfig.sb(), name=name)
        results.append(
            run_policy(policy, trace, cluster=cluster, pm_config=pm, seed=seed)
        )
    rows = [
        {"policy": r.policy, "power_kwh": r.energy_kwh,
         "satisfaction": r.satisfaction, "avg_online": r.avg_online}
        for r in results
    ]
    on_vs_managed = 100.0 * (1.0 - results[1].energy_kwh / results[0].energy_kwh)
    text = results_table(results) + (
        f"\nturning machines off saves {on_vs_managed:.0f} % vs always-on "
        f"(the paper's '>200 W per idle machine' lever)"
    )
    return ExperimentOutput(
        exp_id="ablation_power",
        title="Energy-saving levers: on/off mechanism and power model",
        text=text,
        rows=rows,
        paper_reference=(
            "§III: turning off an idle machine saves >200 W; §IV-A: "
            "constant-power machines defeat load-proportional savings."
        ),
    )
