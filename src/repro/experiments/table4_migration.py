"""Table IV — impact of migration: DBF vs the full score-based policy.

Dynamic Backfilling migrates whenever consolidation is possible; SB
prices migration (P_virt) and operation races (P_conc), migrating less
for more benefit.  With λ 40/90 the paper reports the headline result:
**15 % less power than Backfilling** (12 % less than DBF) at comparable
SLA fulfilment.
"""

from __future__ import annotations

from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    lambda_config,
    paper_trace,
    run_policy,
)
from repro.scheduling.baselines import BackfillingPolicy
from repro.scheduling.dynamic_backfilling import DynamicBackfillingPolicy
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]

PAPER = """\
      λ      Work/ON     CPU (h)  Pwr (kWh)  S (%)  delay (%)  Mig
DBF   30-90  9.7 / 21.3  6056.0    970.6     98.1   12.9       124
SB    30-90  9.7 / 21.0  6055.8    956.4     99.1    9.0        87
SB    40-90  9.7 / 18.3  6055.8    850.2     98.4    9.9        87
(reduction vs BF 1007.3 kWh: 15 %; vs DBF: 12 %)"""


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate Table IV (BF included as the reduction baseline)."""
    trace = paper_trace(scale=scale, seed=seed)
    runs = [
        (BackfillingPolicy(), lambda_config()),
        (DynamicBackfillingPolicy(), lambda_config()),
        (ScoreBasedPolicy(ScoreConfig.sb()), lambda_config()),
        (ScoreBasedPolicy(ScoreConfig.sb()), lambda_config(0.40, 0.90)),
    ]
    results = [run_policy(p, trace, pm_config=pm, seed=seed) for p, pm in runs]
    bf, dbf, sb, sb40 = results
    vs_bf = 100.0 * (1.0 - sb40.energy_kwh / bf.energy_kwh)
    vs_dbf = 100.0 * (1.0 - sb40.energy_kwh / dbf.energy_kwh)
    rows = [
        {
            "policy": r.policy,
            "lambdas": r.lambdas,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
            "migrations": r.migrations,
        }
        for r in results
    ]
    text = results_table(results) + (
        f"\nSB @ 40-90 vs BF @ 30-90: {vs_bf:.1f} % less energy (paper: 15 %)"
        f"\nSB @ 40-90 vs DBF @ 30-90: {vs_dbf:.1f} % less energy (paper: 12 %)"
    )
    return ExperimentOutput(
        exp_id="table4",
        title="Scheduling results of policies with migration",
        text=text,
        rows=rows,
        paper_reference=PAPER,
    )
