"""Table V — impact of the consolidation cost parameters C_e / C_f.

Three configurations of the full SB policy:

* **C_e = 0, C_f = 40** — no empty-host penalty: "does not migrate any VM
  since the fillable reward is not worthwhile";
* **C_e = 20, C_f = 40** — the paper's balanced defaults;
* **C_e = 60, C_f = 100** — aggressive consolidation: best working-node
  count, far more migrations, degraded SLA.
"""

from __future__ import annotations

from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_trace,
    run_policy,
)
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]

PAPER = """\
Ce  Cf   Work/ON     CPU (h)  Pwr (kWh)  S (%)  delay (%)  Mig
 0  40   10.4 / 22.9  6055.2  1036.4     99.3    8.6         0
20  40    9.7 / 21.0  6055.8   956.4     99.1    9.0        87
60  100   9.3 / 22.0  6057.8   998.8     97.7   11.2       432"""


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate Table V."""
    trace = paper_trace(scale=scale, seed=seed)
    variants = [
        (0.0, 40.0),
        (20.0, 40.0),
        (60.0, 100.0),
    ]
    results = []
    for c_empty, c_fill in variants:
        policy = ScoreBasedPolicy(
            ScoreConfig.sb(c_empty=c_empty, c_fill=c_fill),
            name=f"SB(Ce={c_empty:.0f},Cf={c_fill:.0f})",
        )
        results.append(run_policy(policy, trace, seed=seed))
    rows = [
        {
            "c_empty": variants[i][0],
            "c_fill": variants[i][1],
            "work": r.avg_working,
            "on": r.avg_online,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "migrations": r.migrations,
        }
        for i, r in enumerate(results)
    ]
    return ExperimentOutput(
        exp_id="table5",
        title="Score-based scheduling with different consolidation costs",
        text=results_table(results),
        rows=rows,
        paper_reference=PAPER,
        notes=(
            "Migration-count ordering (0 < balanced < aggressive) is the "
            "reproduction target; our simulator's migrations carry less "
            "collateral cost than the authors' testbed-calibrated ones, so "
            "the aggressive variant's *power* penalty is smaller here."
        ),
    )
