"""Table II — static (no-migration) scheduling policies.

RD, RR, BF and the basic score-based configuration SB0 (requirements +
resources + power efficiency), all at λ 30/90.  The paper's message:
non-consolidating policies give poor energy efficiency *and* violate a
significant amount of SLAs; Backfilling and SB0 behave almost alike.
"""

from __future__ import annotations

from repro.des.random import RandomStreams
from repro.engine.results import results_table
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentOutput,
    paper_trace,
    run_policy,
)
from repro.scheduling.baselines import BackfillingPolicy, RandomPolicy, RoundRobinPolicy
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy

__all__ = ["run"]

PAPER = """\
        Work/ON      CPU (h)   Pwr (kWh)  S (%)  delay (%)
RD      24.3 / 41.7  14597.2   1952.1     33.2   474.5
RR      23.5 / 51.9  11844.2   2321.0     60.4   338.4
BF      10.1 / 22.2   6055.3   1007.3     98.0    10.4
SB0      9.9 / 22.4   6055.3   1016.3     98.2    10.4"""


def run(scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Regenerate Table II."""
    trace = paper_trace(scale=scale, seed=seed)
    policies = [
        RandomPolicy(RandomStreams(seed=seed)),
        RoundRobinPolicy(),
        BackfillingPolicy(),
        ScoreBasedPolicy(ScoreConfig.sb0()),
    ]
    results = [run_policy(p, trace, seed=seed) for p in policies]
    rows = [
        {
            "policy": r.policy,
            "work": r.avg_working,
            "on": r.avg_online,
            "cpu_h": r.cpu_hours,
            "power_kwh": r.energy_kwh,
            "satisfaction": r.satisfaction,
            "delay_pct": r.delay_pct,
        }
        for r in results
    ]
    return ExperimentOutput(
        exp_id="table2",
        title="Scheduling results of policies without migration",
        text=results_table(results),
        rows=rows,
        paper_reference=PAPER,
        notes=(
            "RD/RR are static whole-node binding disciplines (see "
            "DESIGN.md): the bound-node queueing reproduces the paper's "
            "catastrophic delays and the sparse node touch reproduces its "
            "~2x power; our satisfaction degradation for RR is milder "
            "than the paper's (ordering preserved)."
        ),
    )
