"""Command-line interface: ``python -m repro`` / ``repro-sim``.

Subcommands
-----------

``simulate``
    Run one policy on the paper datacenter and print the result row.
``experiment``
    Regenerate one of the paper's tables/figures (or ``all``).
``trace``
    Generate the synthetic Grid5000 week and print its statistics (or
    write it to SWF with ``--output``; characterize it with ``--analyze``).
``validate``
    Run the Fig. 1 simulator-vs-testbed validation.
``federation``
    Compare geo-dispatchers over the three-site demo federation.
``serve``
    Run the live control-plane service over a synthetic admission stream
    (anytime placement under latency budgets, journaled decisions,
    SIGTERM-checkpoint / ``--resume`` crash recovery).
``replay``
    Re-execute a decision journal through a fresh engine and verify it
    lands on the identical result — the service's correctness oracle.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.des.random import RandomStreams
from repro.engine.config import EngineConfig
from repro.engine.results import results_table
from repro.experiments import registry
from repro.experiments.common import DEFAULT_SEED, paper_cluster, paper_trace, run_policy
from repro.scheduling.baselines import BackfillingPolicy, RandomPolicy, RoundRobinPolicy
from repro.scheduling.dynamic_backfilling import DynamicBackfillingPolicy
from repro.scheduling.heuristics import (
    MaxMinPolicy,
    MctPolicy,
    MetPolicy,
    MinMinPolicy,
    OlbPolicy,
)
from repro.scheduling.power_manager import PowerManagerConfig
from repro.scheduling.score import ScoreConfig
from repro.scheduling.score.policy import ScoreBasedPolicy
from repro.validation.compare import validate_simulator
from repro.workload.swf import write_swf

__all__ = ["main", "build_parser", "make_policy"]

POLICIES = (
    "rd", "rr", "bf", "dbf",
    "sb0", "sb1", "sb2", "sb", "sb-full",
    "met", "mct", "min-min", "max-min", "olb",
)
SOLVERS = ("hill_climb", "sa", "tabu")


def make_policy(
    name: str,
    seed: int = DEFAULT_SEED,
    solver: str = "hill_climb",
    observed_reliability: bool = False,
):
    """Instantiate a policy by CLI name.

    ``observed_reliability`` upgrades the score presets to learned P_fault
    reliabilities (forcing the fault penalty on); the engine wires the
    tracker through when ``EngineConfig.observed_reliability`` is also set.
    """
    name = name.lower()
    simple = {
        "rr": RoundRobinPolicy,
        "bf": BackfillingPolicy,
        "dbf": DynamicBackfillingPolicy,
        "met": MetPolicy,
        "mct": MctPolicy,
        "min-min": MinMinPolicy,
        "max-min": MaxMinPolicy,
        "olb": OlbPolicy,
    }
    if name == "rd":
        return RandomPolicy(RandomStreams(seed=seed))
    if name in simple:
        return simple[name]()
    score = {
        "sb0": ScoreConfig.sb0,
        "sb1": ScoreConfig.sb1,
        "sb2": ScoreConfig.sb2,
        "sb": ScoreConfig.sb,
        "sb-full": ScoreConfig.full,
    }
    if name in score:
        config = score[name]()
        if observed_reliability:
            from dataclasses import replace

            config = replace(
                config, enable_fault=True, use_observed_reliability=True
            )
        return ScoreBasedPolicy(config, solver=solver, solver_seed=seed)
    raise SystemExit(f"unknown policy {name!r}; choose from {', '.join(POLICIES)}")


def _experiment_ids(value: str) -> str:
    """argparse type: 'all', one experiment id, or a comma-separated list."""
    if value == "all":
        return value
    known = set(registry.list_ids())
    unknown = [tok for tok in value.split(",") if tok and tok not in known]
    if unknown or not value:
        raise argparse.ArgumentTypeError(
            f"unknown experiment id(s) {', '.join(unknown) or value!r} "
            f"(choose from {', '.join(registry.list_ids())}, or 'all')"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Energy-aware scheduling in virtualized datacenters "
            "(CLUSTER 2010 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one policy on the paper datacenter")
    sim.add_argument("--policy", choices=POLICIES, default="sb")
    sim.add_argument("--solver", choices=SOLVERS, default="hill_climb",
                     help="matrix solver for the score-based policies")
    sim.add_argument("--scale", type=float, default=1.0,
                     help="fraction of the week to simulate (default 1.0)")
    sim.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sim.add_argument("--lambda-min", type=float, default=0.30)
    sim.add_argument("--lambda-max", type=float, default=0.90)
    sim.add_argument("--hosts", type=int, default=100)
    sim.add_argument("--jobs-csv", type=str, default=None,
                     help="write per-job records (wait, stretch, S) to CSV")
    sim.add_argument("--strict-invariants", action="store_true",
                     help="run the incremental-state oracles on a cadence "
                          "during the simulation (guard rail against silent "
                          "aggregate drift; rows stay bit-identical)")
    sim.add_argument("--invariant-mode", choices=("raise", "resync"),
                     default="raise",
                     help="on detected drift: abort with StateError (raise) "
                          "or rebuild the aggregate and count it (resync)")
    sim.add_argument("--chaos", type=float, nargs="?", const=0.05, default=None,
                     metavar="RATE",
                     help="inject operation faults (creation failures, "
                          "migration aborts, boot failures) at this uniform "
                          "base rate (flag alone = 0.05); enables the "
                          "self-healing supervisor")
    sim.add_argument("--chaos-seed", type=int, default=None,
                     help="seed of the fault streams (default: --seed), so "
                          "the same workload can be replayed under a "
                          "different fault realization")
    sim.add_argument("--observed-reliability", action="store_true",
                     help="score-based policies learn per-host reliability "
                          "from operation outcomes (EWMA) instead of the "
                          "static spec F_rel")
    sim.add_argument("--trace-out", type=str, default=None, metavar="FILE",
                     help="write the structured event trace as JSON lines "
                          "(enables event tracing)")
    sim.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                     help="engine-level checkpointing: snapshot the whole "
                          "simulation state here so a killed run can resume "
                          "bit-identically (see docs/robustness.md)")
    sim.add_argument("--checkpoint-interval", type=float, default=None,
                     metavar="SIM_S",
                     help="snapshot every SIM_S simulated seconds "
                          "(requires --checkpoint-dir)")
    sim.add_argument("--checkpoint-wall-interval", type=float, default=None,
                     metavar="S",
                     help="snapshot every S wall-clock seconds "
                          "(requires --checkpoint-dir)")
    sim.add_argument("--restore", nargs="?", const=True, default=False,
                     metavar="SNAPSHOT",
                     help="resume from the newest compatible snapshot in "
                          "--checkpoint-dir (flag alone), or from an "
                          "explicit snapshot file")
    sim.add_argument("--max-wall-clock", type=float, default=None, metavar="S",
                     help="wall-clock budget: after S seconds the run "
                          "checkpoints (with --checkpoint-dir) and exits 0, "
                          "resumable via --restore")

    exp = sub.add_parser(
        "experiment",
        help="regenerate a paper table/figure",
        description=(
            "Regenerate one of the paper's tables/figures, or 'all' for the "
            "whole evaluation. Sweeps parallelize across experiments: "
            "--parallel fans them out over a process pool and produces the "
            "same rows as a serial run; --cache-dir re-serves identical "
            "(experiment, scale, seed) invocations from disk."
        ),
    )
    exp.add_argument("exp_id", type=_experiment_ids, metavar="exp_id",
                     help="an experiment id, a comma-separated list of ids, "
                          f"or 'all' (known: {', '.join(registry.list_ids())})")
    exp.add_argument("--scale", type=float, default=1.0)
    exp.add_argument("--seed", type=int, default=DEFAULT_SEED)
    exp.add_argument("--parallel", action="store_true",
                     help="run experiments concurrently in worker processes "
                          "(identical output, less wall clock)")
    exp.add_argument("--jobs", type=int, default=None,
                     help="worker processes for --parallel (default: all cores)")
    exp.add_argument("--cache-dir", type=str, default=None,
                     help="cache experiment outputs here, keyed by "
                          "(experiment, scale, seed, code version); entries "
                          "are written as each experiment finishes")
    exp.add_argument("--retries", type=int, default=0,
                     help="extra attempts per experiment after a failure "
                          "(exponential backoff with deterministic jitter)")
    exp.add_argument("--task-timeout", type=float, default=None, metavar="S",
                     help="per-experiment wall-clock budget in seconds; a "
                          "hung worker is reaped and the task retried or "
                          "failed with TaskTimeoutError (parallel mode only)")
    exp.add_argument("--resume", action="store_true",
                     help="skip experiments a previous journal run completed "
                          "(requires --cache-dir; see docs/robustness.md)")
    exp.add_argument("--partial", action="store_true",
                     help="on failures, print completed outputs plus a "
                          "failure report (exit 1) instead of aborting the "
                          "whole sweep")
    exp.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                     help="engine-level checkpointing inside each experiment "
                          "task: interrupted or retried tasks resume "
                          "mid-simulation instead of recomputing")
    exp.add_argument("--checkpoint-interval", type=float, default=None,
                     metavar="SIM_S",
                     help="snapshot cadence in simulated seconds "
                          "(requires --checkpoint-dir)")
    exp.add_argument("--checkpoint-wall-interval", type=float, default=None,
                     metavar="S",
                     help="snapshot cadence in wall-clock seconds "
                          "(requires --checkpoint-dir)")
    exp.add_argument("--max-wall-clock", type=float, default=None, metavar="S",
                     help="sweep wall-clock budget: after S seconds the sweep "
                          "winds down gracefully (in-flight work journaled "
                          "'interrupted', workers checkpoint) and exits 0; "
                          "continue later with --resume")

    tr = sub.add_parser("trace", help="generate the synthetic Grid5000 week")
    tr.add_argument("--scale", type=float, default=1.0)
    tr.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tr.add_argument("--output", type=str, default=None,
                    help="write the trace to this SWF file")
    tr.add_argument("--analyze", action="store_true",
                    help="print arrival/runtime/width histograms and the "
                         "offered-demand sparkline")

    sub.add_parser("validate", help="Fig. 1 simulator-vs-testbed validation")

    fed = sub.add_parser("federation",
                         help="compare geo-dispatchers over the demo sites")
    fed.add_argument("--scale", type=float, default=1.0 / 7.0)
    fed.add_argument("--seed", type=int, default=DEFAULT_SEED)

    def _service_flags(p, *, serving: bool) -> None:
        """Flags shared by serve and replay.

        Everything here shapes the deterministic event sequence, so a
        replay must repeat the serve invocation's values (the journal is
        the recipe; these are its ingredients).
        """
        p.add_argument("--journal", type=str, required=True, metavar="FILE",
                       help="decision journal (JSONL; written by serve, "
                            "read by replay)")
        p.add_argument("--policy", choices=POLICIES, default="sb")
        p.add_argument("--solver", choices=SOLVERS, default="hill_climb")
        p.add_argument("--hosts", type=int, default=100)
        p.add_argument("--seed", type=int, default=DEFAULT_SEED)
        p.add_argument("--max-retries", type=int, default=3,
                       help="retry rounds scheduled for a deferred "
                            "admission (deterministically jittered "
                            "exponential backoff)")
        p.add_argument("--retry-base-s", type=float, default=30.0,
                       help="base simulated delay of the first retry")
        p.add_argument("--drain-grace-s", type=float, default=None,
                       help="simulated grace window after the last "
                            "admission before the service finalizes "
                            "(default: the engine's drain grace)")
        p.add_argument("--chaos", type=float, nargs="?", const=0.05,
                       default=None, metavar="RATE",
                       help="inject operation faults at this base rate "
                            "(deterministic per seed, so replay "
                            "reproduces them)")
        p.add_argument("--chaos-seed", type=int, default=None)
        p.add_argument("--result-json", type=str, default=None,
                       metavar="FILE",
                       help="write the final result's canonical dict as "
                            "JSON (the replay-identity comparand)")
        if serving:
            p.add_argument("--round-budget", type=int, default=None,
                           help="anytime hill-climb iteration cap per "
                                "scheduling round (deterministic)")
            p.add_argument("--round-deadline-ms", type=float, default=None,
                           help="wall-clock budget per scheduling round; "
                                "committed iterations are journaled so "
                                "replay stays deterministic")

    srv = sub.add_parser(
        "serve",
        help="run the live control-plane service (synthetic admissions)",
        description=(
            "Serve a deterministic synthetic admission stream through the "
            "asyncio control plane: bounded queue, anytime placement "
            "budgets, every decision journaled. SIGTERM checkpoints and "
            "exits 0; --resume restarts from the snapshot plus the "
            "journal tail with zero lost or duplicated decisions."
        ),
    )
    _service_flags(srv, serving=True)
    srv.add_argument("--synthetic-hours", type=float, default=4.0,
                     help="span of the synthetic admission stream")
    srv.add_argument("--synthetic-rate", type=float, default=40.0,
                     help="peak arrival rate (jobs/hour) of the stream")
    srv.add_argument("--synthetic-jobs", type=int, default=None,
                     help="cap the stream at this many admissions")
    srv.add_argument("--checkpoint-dir", type=str, default=None,
                     metavar="DIR",
                     help="snapshot the engine here (enables SIGTERM "
                          "checkpointing and --resume)")
    srv.add_argument("--checkpoint-interval", type=float, default=None,
                     metavar="SIM_S",
                     help="snapshot every SIM_S simulated seconds")
    srv.add_argument("--checkpoint-wall-interval", type=float, default=None,
                     metavar="S",
                     help="snapshot every S wall-clock seconds")
    srv.add_argument("--resume", action="store_true",
                     help="restore the newest snapshot (if any), recover "
                          "the journal, catch up, and keep serving")
    srv.add_argument("--kill-after", type=int, default=None, metavar="N",
                     help="abort the process (SIGKILL semantics, exit 137) "
                          "after N admissions — crash-drill hook")

    rep = sub.add_parser(
        "replay",
        help="re-execute a decision journal and verify bit-identity",
        description=(
            "Feed a serve run's journal back through a fresh engine — "
            "same code path, journaled admission times and per-round "
            "iteration budgets — and report any decision that diverges. "
            "Exit 1 on divergence (or on a --baseline canonical "
            "mismatch); this is the service's correctness oracle."
        ),
    )
    _service_flags(rep, serving=False)
    rep.add_argument("--baseline", type=str, default=None, metavar="FILE",
                     help="canonical-result JSON (from --result-json) to "
                          "compare against; any field diff exits 1")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "simulate":
        import signal

        from repro.cluster.faults import FaultConfig
        from repro.engine.datacenter import DatacenterSimulation
        from repro.errors import SimulationInterrupted

        trace = paper_trace(scale=args.scale, seed=args.seed)
        engine = DatacenterSimulation(
            cluster=paper_cluster(args.hosts),
            policy=make_policy(
                args.policy,
                seed=args.seed,
                solver=args.solver,
                observed_reliability=args.observed_reliability,
            ),
            trace=trace.fresh(),
            pm_config=PowerManagerConfig(
                lambda_min=args.lambda_min, lambda_max=args.lambda_max
            ),
            config=EngineConfig(
                seed=args.seed,
                strict_invariants=args.strict_invariants,
                invariant_mode=args.invariant_mode,
                faults=(
                    FaultConfig.uniform(args.chaos)
                    if args.chaos is not None
                    else None
                ),
                chaos_seed=args.chaos_seed,
                observed_reliability=args.observed_reliability,
                trace_events=bool(args.trace_out),
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_sim_interval_s=args.checkpoint_interval,
                checkpoint_wall_interval_s=args.checkpoint_wall_interval,
                max_wall_clock_s=args.max_wall_clock,
            ),
        )
        if args.restore:
            if isinstance(args.restore, str):
                from repro.engine.snapshot import load_snapshot

                fresh = engine
                engine = load_snapshot(args.restore)
                # The snapshot carries the interrupted run's operational
                # knobs; this invocation's flags win.
                engine.adopt_operational(fresh.config)
            else:
                restored = engine.try_restore()
                if restored is None:
                    print("no snapshot to restore; starting fresh",
                          file=sys.stderr)
                else:
                    engine = restored
                    print(
                        f"restored from snapshot at t={engine.sim.now:.0f}s "
                        f"({engine.sim.events_processed} events)",
                        file=sys.stderr,
                    )

        def _graceful(signum, frame):
            engine.request_graceful_stop()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, _graceful)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        try:
            result = engine.run()
        except SimulationInterrupted as exc:
            # Clean preemption: the final snapshot (if checkpointing is
            # on) makes the run resumable with --restore.  Exit 0 so
            # supervisors (systemd, batch schedulers) see a clean stop.
            print(f"interrupted: {exc}", file=sys.stderr)
            if args.checkpoint_dir:
                print("resume with --restore", file=sys.stderr)
            return 0
        except Exception:
            # Dump whatever trace we have: on a strict-invariant abort
            # (or any mid-run crash) the event log is the post-mortem.
            if args.trace_out and engine.trace_log is not None:
                n = engine.trace_log.write_jsonl(args.trace_out)
                print(f"{n} trace records written to {args.trace_out} "
                      f"(run aborted)", file=sys.stderr)
            raise
        print(results_table([result]))
        print(
            f"jobs {result.n_completed}/{result.n_jobs} completed, "
            f"{result.sim_events} events, "
            f"{result.wall_clock_s:.1f} s wall clock"
        )
        if args.checkpoint_dir:
            print(
                f"checkpoints: {result.checkpoints_written} written "
                f"({result.checkpoint_bytes / 1e6:.1f} MB), "
                f"{result.snapshot_restores} restore(s)"
            )
        if args.chaos is not None:
            print(
                f"chaos: {result.failed_creations} failed creations, "
                f"{result.aborted_migrations} aborted migrations, "
                f"{result.boot_failures} boot failures, "
                f"{result.quarantines} quarantines, "
                f"{result.lost_cpu_s:.1f} CPU-s lost, "
                f"mean recovery {result.mean_recovery_s:.0f} s"
            )
        if args.trace_out and engine.trace_log is not None:
            n = engine.trace_log.write_jsonl(args.trace_out)
            print(f"{n} trace records written to {args.trace_out}")
        if args.jobs_csv:
            from repro.engine.jobstats import job_records, summarize_jobs, write_csv

            records = job_records(engine)
            write_csv(records, args.jobs_csv)
            summary = summarize_jobs(records)
            print(f"per-job records written to {args.jobs_csv}")
            print(
                "wait p50/p95/p99: "
                f"{summary['wait_p50_s']:.0f}/{summary['wait_p95_s']:.0f}/"
                f"{summary['wait_p99_s']:.0f} s; "
                f"stretch p95 {summary['stretch_p95']:.2f}; "
                f"late fraction {summary['late_fraction']:.1%}"
            )
        return 0

    if args.command == "experiment":
        from repro.errors import SimulationInterrupted
        from repro.experiments.resilience import ExecutionPolicy
        from repro.experiments.runner import run_experiments

        ids = (
            registry.list_ids()
            if args.exp_id == "all"
            else args.exp_id.split(",")
        )
        execution = ExecutionPolicy(
            retries=args.retries,
            task_timeout_s=args.task_timeout,
            partial=args.partial,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_sim_interval_s=args.checkpoint_interval,
            checkpoint_wall_interval_s=args.checkpoint_wall_interval,
            max_wall_clock_s=args.max_wall_clock,
        )
        try:
            result = run_experiments(
                ids,
                scale=args.scale,
                seed=args.seed,
                parallel=args.parallel,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                execution=execution,
                resume=args.resume,
            )
        except SimulationInterrupted as exc:
            # Graceful preemption (signal or --max-wall-clock): completed
            # work is cached/journaled, snapshots are on disk — exit 0.
            print(f"interrupted: {exc}", file=sys.stderr)
            return 0
        if args.partial:
            for output in result.ordered_outputs():
                if output is not None:
                    print(output)
                    print()
            if result.interrupted:
                print("-- sweep interrupted (resumable with --resume) --",
                      file=sys.stderr)
            if result.failures:
                print("-- failures --", file=sys.stderr)
                print(result.failure_summary(), file=sys.stderr)
                return 1
            return 0
        for output in result:
            print(output)
            print()
        return 0

    if args.command == "trace":
        trace = paper_trace(scale=args.scale, seed=args.seed)
        print(trace.stats())
        if args.analyze:
            from repro.viz import sparkline
            from repro.workload.analysis import (
                demand_timeline,
                hourly_arrival_counts,
                runtime_histogram,
                width_histogram,
            )

            _, demand = demand_timeline(trace)
            print("offered demand (cores): " + sparkline(demand, width=60)
                  + f"  peak {demand.max():.0f}")
            print("arrivals by hour:       "
                  + sparkline(hourly_arrival_counts(trace), width=24))
            print(f"runtimes: {runtime_histogram(trace)}")
            print(f"widths:   {width_histogram(trace)}")
        if args.output:
            write_swf(trace, args.output)
            print(f"written to {args.output}")
        return 0

    if args.command == "validate":
        print(validate_simulator())
        return 0

    if args.command == "federation":
        from repro.experiments.ext_federation import run as run_federation

        print(run_federation(scale=args.scale, seed=args.seed))
        return 0

    if args.command in ("serve", "replay"):
        import json as _json

        from repro.cluster.faults import FaultConfig
        from repro.engine.datacenter import DatacenterSimulation

        def build_engine(checkpointing: bool) -> DatacenterSimulation:
            kwargs = {}
            if args.drain_grace_s is not None:
                kwargs["drain_grace_s"] = args.drain_grace_s
            if checkpointing and getattr(args, "checkpoint_dir", None):
                kwargs.update(
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_sim_interval_s=args.checkpoint_interval,
                    checkpoint_wall_interval_s=args.checkpoint_wall_interval,
                )
            return DatacenterSimulation(
                cluster=paper_cluster(args.hosts),
                policy=make_policy(
                    args.policy, seed=args.seed, solver=args.solver
                ),
                trace=None,  # live mode: admissions come from the service
                config=EngineConfig(
                    seed=args.seed,
                    faults=(
                        FaultConfig.uniform(args.chaos)
                        if args.chaos is not None
                        else None
                    ),
                    chaos_seed=args.chaos_seed,
                    **kwargs,
                ),
            )

        def write_result_json(result) -> None:
            if args.result_json:
                with open(args.result_json, "w", encoding="utf-8") as fh:
                    _json.dump(
                        result.canonical(), fh, indent=2, sort_keys=True
                    )
                print(f"canonical result written to {args.result_json}")

        if args.command == "serve":
            import os
            import signal

            from repro.service import (
                DecisionJournal,
                PlacementCore,
                ServiceConfig,
                ServiceEngine,
                resume_service,
                serve_synthetic,
            )
            from repro.workload.synthetic import (
                Grid5000WeekGenerator,
                SyntheticConfig,
            )

            round_deadline_s = (
                None
                if args.round_deadline_ms is None
                else args.round_deadline_ms / 1e3
            )
            stream_cfg = SyntheticConfig(
                horizon_s=args.synthetic_hours * 3600.0,
                base_rate_per_hour=args.synthetic_rate,
                night_fraction=0.9,
            )
            jobs = list(
                Grid5000WeekGenerator(stream_cfg, seed=args.seed)
                .generate()
                .jobs
            )
            if args.synthetic_jobs is not None:
                jobs = jobs[: args.synthetic_jobs]

            engine = build_engine(checkpointing=True)
            if args.resume:
                restored = engine.try_restore()
                if restored is not None:
                    engine = restored
                    print(
                        f"restored snapshot at t={engine.sim.now:.0f}s "
                        f"({engine.sim.events_processed} events)",
                        file=sys.stderr,
                    )
                else:
                    print(
                        "no snapshot found; recovering from the journal "
                        "alone",
                        file=sys.stderr,
                    )
                svc = resume_service(
                    engine,
                    args.journal,
                    round_budget=args.round_budget,
                    round_deadline_s=round_deadline_s,
                    max_retries=args.max_retries,
                    retry_base_s=args.retry_base_s,
                )
                print(
                    f"caught up: {svc.cursor.admits} admissions applied, "
                    f"{svc.journal.skipped} journal rewrites deduplicated",
                    file=sys.stderr,
                )
            else:
                core = PlacementCore(
                    engine.policy,
                    round_budget=args.round_budget,
                    round_deadline_s=round_deadline_s,
                )
                svc = ServiceEngine(
                    engine,
                    core,
                    DecisionJournal(args.journal),
                    max_retries=args.max_retries,
                    retry_base_s=args.retry_base_s,
                )

            stop = {"sig": False}

            def _term(signum, frame):
                stop["sig"] = True

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    signal.signal(signum, _term)
                except ValueError:  # pragma: no cover - non-main thread
                    pass

            def stop_flag() -> bool:
                if (
                    args.kill_after is not None
                    and svc.cursor.admits >= args.kill_after
                ):
                    # The crash drill: die like SIGKILL — no journal
                    # close, no checkpoint, no cleanup.
                    os._exit(137)
                return stop["sig"]

            result, stats = serve_synthetic(
                svc,
                jobs,
                ServiceConfig(
                    round_budget=args.round_budget,
                    round_deadline_ms=args.round_deadline_ms,
                    max_retries=args.max_retries,
                    retry_base_s=args.retry_base_s,
                ),
                stop_flag=stop_flag,
            )
            print("service stats: " + _json.dumps(stats))
            if result is None:
                print(
                    "interrupted: state checkpointed; continue with "
                    "--resume",
                    file=sys.stderr,
                )
                return 0
            print(results_table([result]))
            write_result_json(result)
            return 0

        # replay
        from repro.service import replay_journal

        report = replay_journal(
            args.journal,
            lambda: build_engine(checkpointing=False),
            max_retries=args.max_retries,
            retry_base_s=args.retry_base_s,
        )
        print(results_table([report.result]))
        for mismatch in report.mismatches:
            print(f"MISMATCH: {mismatch}", file=sys.stderr)
        write_result_json(report.result)
        ok = report.ok
        if args.baseline:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = _json.load(fh)
            # Round-trip through JSON so both sides carry JSON types.
            replayed = _json.loads(_json.dumps(report.result.canonical()))
            diff = {
                key: (baseline.get(key), replayed.get(key))
                for key in set(baseline) | set(replayed)
                if baseline.get(key) != replayed.get(key)
            }
            if diff:
                for key, (base_v, got_v) in sorted(diff.items()):
                    print(
                        f"BASELINE DIFF {key}: baseline={base_v!r} "
                        f"replay={got_v!r}",
                        file=sys.stderr,
                    )
                ok = False
            else:
                print("replay matches the baseline canonical result")
        if ok:
            print(f"replay OK: {len(report.decisions)} decisions verified")
        return 0 if ok else 1

    return 1  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
