"""Runtime SLA fulfilment monitoring.

The P_SLA penalty (§III-A-5) needs ``SLA(h, vm)`` — a number in [0, 1]
describing how well a *running* VM is tracking its deadline.  The paper
does not give the estimator's formula, only its use, so we define the
natural one: project the completion time assuming the VM keeps its current
CPU share, then map the projected execution time onto the satisfaction
curve (scaled to [0, 1]).

* Projected on-time finish → fulfilment 1.0.
* Projected finish between the deadline and twice the deadline →
  fulfilment linearly decaying 1 → 0 (same shape as S).
* Starved VMs (zero share) → fulfilment 0.

:class:`SlaMonitor` additionally implements the *dynamic SLA enforcement*
loop: when a VM's fulfilment drops below 1, its resource requirement is
inflated so the next scheduling round relocates it somewhere with more
headroom ("we increase the amount of needed resources for that VM ... so
the VM will be rescheduled in another node with more available resources").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cluster.vm import Vm, VmState
from repro.units import clamp

__all__ = ["fulfillment", "SlaMonitor"]


def fulfillment(vm: Vm, now: float) -> float:
    """``SLA(h, vm)`` ∈ [0, 1] for a VM given its current share.

    Queued and creating VMs are assessed on their projected wait: they hold
    fulfilment 1 until even an immediate full-speed start could not meet
    the deadline anymore, then decay like running VMs.
    """
    job = vm.job
    tdead = job.allowed_exec_time
    if vm.state in (VmState.COMPLETED,):
        return 1.0 if job.satisfaction() >= 100.0 else clamp(job.satisfaction() / 100.0, 0.0, 1.0)
    if vm.state is VmState.FAILED:
        return 0.0

    if vm.state in (VmState.RUNNING, VmState.MIGRATING) and vm.share > 0:
        eta = vm.eta(now)
        projected_exec = eta - job.submit_time
    elif vm.state in (VmState.RUNNING, VmState.MIGRATING):
        return 0.0  # starved
    else:
        # QUEUED / CREATING: best case is an immediate full-demand run.
        remaining = vm.work_remaining / max(vm.job.cpu_pct, 1e-9)
        projected_exec = (now - job.submit_time) + remaining

    if projected_exec <= tdead:
        return 1.0
    return clamp(1.0 - (projected_exec - tdead) / tdead, 0.0, 1.0)


@dataclass
class SlaViolation:
    """A detected fulfilment drop for one VM."""

    vm_id: int
    time: float
    fulfillment: float


class SlaMonitor:
    """Watches running VMs and drives dynamic SLA enforcement.

    Parameters
    ----------
    inflation_factor:
        Multiplier applied to a violating VM's CPU requirement.
    tolerance:
        ``TH_SLA``: fulfilment at/below this is an *unacceptable* violation
        (the score matrix pins it at infinity; we also count it).
    cooldown_s:
        Minimum time between two inflations of the same VM, so one long
        violation does not compound the requirement every round.
    """

    def __init__(
        self,
        inflation_factor: float = 1.25,
        tolerance: float = 0.5,
        cooldown_s: float = 600.0,
    ) -> None:
        self.inflation_factor = inflation_factor
        self.tolerance = tolerance
        self.cooldown_s = cooldown_s
        self._last_inflation: Dict[int, float] = {}
        self.violations: List[SlaViolation] = []

    def check(
        self,
        vms: List[Vm],
        now: float,
        *,
        enforce: bool = True,
        on_inflate: Optional[Callable[[Vm], None]] = None,
    ) -> List[Vm]:
        """Assess all VMs; inflate violators; return VMs needing a reschedule.

        ``on_inflate`` is invoked right after each inflation — the engine
        uses it to resync the hosting machine's incremental occupancy
        aggregates and metric contributions (the inflation changes
        ``vm.cpu_req`` in place, behind the host's back).
        """
        needs_attention: List[Vm] = []
        for vm in vms:
            if not vm.is_active:
                continue
            f = fulfillment(vm, now)
            if f >= 1.0:
                continue
            self.violations.append(SlaViolation(vm.vm_id, now, f))
            if not enforce:
                continue
            last = self._last_inflation.get(vm.vm_id, -float("inf"))
            if now - last >= self.cooldown_s and vm.state is VmState.RUNNING:
                vm.inflate(self.inflation_factor)
                self._last_inflation[vm.vm_id] = now
                needs_attention.append(vm)
                if on_inflate is not None:
                    on_inflate(vm)
        return needs_attention

    @property
    def violation_count(self) -> int:
        """Number of fulfilment drops observed (not distinct VMs)."""
        return len(self.violations)
