"""Deadline-based client satisfaction (the paper's §V metric).

    S = 100                                        if Texec <  Tdead
    S = 100 * max(1 - (Texec - Tdead)/Tdead, 0)    if Texec >= Tdead

where ``Texec`` is wall-clock time from submission to completion and
``Tdead`` the agreed deadline measured from submission.  Satisfaction hits
0 when execution takes twice the deadline.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.job import Job

__all__ = ["satisfaction", "delay_pct", "aggregate"]


def satisfaction(texec: float, tdead: float) -> float:
    """Satisfaction S ∈ [0, 100] for one execution.

    Examples
    --------
    >>> satisfaction(100.0, 150.0)
    100.0
    >>> satisfaction(225.0, 150.0)
    50.0
    >>> satisfaction(300.0, 150.0)
    0.0
    """
    if tdead <= 0:
        raise ConfigurationError("deadline must be positive")
    if texec < tdead:
        return 100.0
    return 100.0 * max(1.0 - (texec - tdead) / tdead, 0.0)


def delay_pct(texec: float, runtime_s: float) -> float:
    """Execution stretch past the dedicated runtime, in percent.

    Matches the paper's example: deadline factor 1.5, dedicated runtime
    100 min, execution 300 min → delay 200 %.
    """
    if runtime_s <= 0:
        raise ConfigurationError("runtime must be positive")
    return 100.0 * max(texec - runtime_s, 0.0) / runtime_s


def aggregate(jobs: Iterable[Job]) -> Tuple[float, float]:
    """Mean (satisfaction, delay%) over completed jobs.

    Jobs that never completed contribute 0 satisfaction and their
    satisfaction-zero stretch as delay, so dropping jobs cannot *improve*
    a policy's score.
    """
    sats = []
    delays = []
    for job in jobs:
        sats.append(job.satisfaction())
        delays.append(job.delay_pct())
    if not sats:
        return 100.0, 0.0
    return float(np.mean(sats)), float(np.mean(delays))
