"""SLA / QoS modelling: deadline satisfaction and runtime fulfilment.

Two distinct quantities, per the paper:

* the **a-posteriori satisfaction** S of a finished job (§V's evaluation
  metric, computed in :mod:`repro.sla.satisfaction`), and
* the **runtime SLA fulfilment** ``SLA(h, vm) ∈ [0, 1]`` of an executing
  VM (the signal feeding the P_SLA penalty and the dynamic enforcement
  mechanism of §III-A-5, computed in :mod:`repro.sla.monitor`).
"""

from repro.sla.satisfaction import satisfaction, delay_pct, aggregate
from repro.sla.monitor import SlaMonitor, fulfillment

__all__ = [
    "satisfaction",
    "delay_pct",
    "aggregate",
    "SlaMonitor",
    "fulfillment",
]
