"""Legacy setup shim.

This repository is built in offline environments that lack the ``wheel``
package, where PEP 517/660 editable installs fail.  Keeping a plain
``setup.py`` (and no ``[build-system]`` table in pyproject.toml) lets
``pip install -e .`` fall back to ``setup.py develop``, which works with
setuptools alone.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
